(* A persistent pool of worker domains executing chunked parallel-loop
   jobs (§5.4.3). The caller participates as worker 0; [size - 1]
   domains are spawned once and parked on a condition variable between
   jobs, so per-dispatch cost is one lock + broadcast rather than a
   domain spawn. [run] doubles as a reusable barrier: it returns only
   once every worker has finished the job.

   The pool is self-healing. Each worker slot carries a generation
   counter and a heartbeat (completed-job count). A worker that dies
   (simulated by an armed [arm_kill]) completes its barrier slot on the
   way out, so the failure is detected at the barrier — never as a hang
   — healed by respawning the slot, and surfaced as [Worker_died] so the
   caller can re-run the interrupted job on the recovered pool. A worker
   that hangs inside a job is caught by the optional watchdog deadline
   on [run]: the caller polls the barrier against a wall-clock bound,
   and on expiry abandons the stuck slots (their generation is bumped so
   a late finisher exits as a harmless zombie instead of corrupting a
   future epoch), spawns replacements, and raises [Hung]. *)

exception Worker_died of int list
exception Hung of { workers : int list; waited_s : float }

type slot = {
  worker_ix : int;  (* 1-based; the caller is worker 0 and has no slot. *)
  mutable dom : unit Domain.t option;  (* None once abandoned by the watchdog. *)
  mutable gen : int;  (* Bumped on every respawn/abandon of this slot. *)
  mutable beats : int;  (* Heartbeat: jobs this incarnation completed. *)
}

type t = {
  size : int;
  slots : slot array;  (* Length [size - 1]; slot [i] is worker [i + 1]. *)
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;  (* Bumped per job; workers wait for a change. *)
  mutable remaining : int;  (* Workers still inside the current job. *)
  mutable errors : (int * exn) list;
  mutable dead : int list;  (* Workers that died during the current job. *)
  finished : bool array;  (* Per-slot: reached the barrier for this job. *)
  mutable kills : (int * int) list;  (* Armed (worker, dispatch) deaths. *)
  mutable dispatch_ix : int;  (* 0-based index of the job in flight. *)
  mutable dispatches : int;  (* Total jobs dispatched (size > 1 only). *)
  mutable respawns : int;  (* Worker domains respawned over the lifetime. *)
  mutable zombies : unit Domain.t list;
      (* Abandoned-but-eventually-finishing domains, joined at shutdown. *)
  mutable stopped : bool;
}

let size t = t.size
let dispatches t = t.dispatches
let respawns t = t.respawns
let heartbeats t = Array.map (fun s -> s.beats) t.slots

let worker pool w ~gen ~epoch0 =
  let slot = pool.slots.(w - 1) in
  let my_epoch = ref epoch0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while (not pool.stopped) && slot.gen = gen && pool.epoch = !my_epoch do
      Condition.wait pool.cv pool.m
    done;
    if pool.stopped || slot.gen <> gen then begin
      (* Shut down, or this slot was recycled under us: exit. *)
      Mutex.unlock pool.m;
      running := false
    end
    else if List.mem (w, pool.dispatch_ix) pool.kills then begin
      (* Injected death: the domain exits without touching the job. The
         barrier slot is completed on the way out so the failure shows
         up at the barrier (as [Worker_died]) instead of as a hang. *)
      pool.kills <- List.filter (fun k -> k <> (w, pool.dispatch_ix)) pool.kills;
      pool.dead <- w :: pool.dead;
      pool.finished.(w - 1) <- true;
      pool.remaining <- pool.remaining - 1;
      if pool.remaining = 0 then Condition.broadcast pool.cv;
      Mutex.unlock pool.m;
      running := false
    end
    else begin
      my_epoch := pool.epoch;
      let job = Option.get pool.job in
      Mutex.unlock pool.m;
      let err = match job w with () -> None | exception e -> Some e in
      Mutex.lock pool.m;
      if slot.gen <> gen then begin
        (* The watchdog abandoned this slot mid-job and already repaired
           the barrier accounting: exit as a zombie without touching it. *)
        Mutex.unlock pool.m;
        running := false
      end
      else begin
        (match err with
        | Some e -> pool.errors <- (w, e) :: pool.errors
        | None -> ());
        slot.beats <- slot.beats + 1;
        pool.finished.(w - 1) <- true;
        pool.remaining <- pool.remaining - 1;
        if pool.remaining = 0 then Condition.broadcast pool.cv;
        Mutex.unlock pool.m
      end
    end
  done

(* Caller must hold [pool.m]: the epoch is captured here, under the
   lock, so the new worker parks on exactly the epoch current at spawn
   time — reading it from inside the fresh domain would race the next
   dispatch and could park the worker one epoch too far ahead. *)
let spawn_slot pool slot =
  let gen = slot.gen in
  let w = slot.worker_ix in
  let epoch0 = pool.epoch in
  slot.beats <- 0;
  slot.dom <- Some (Domain.spawn (fun () -> worker pool w ~gen ~epoch0))

let create size =
  if size < 1 then
    invalid_arg (Printf.sprintf "Domain_pool.create: size %d < 1" size);
  let pool =
    {
      size;
      slots =
        Array.init (size - 1) (fun i ->
            { worker_ix = i + 1; dom = None; gen = 0; beats = 0 });
      m = Mutex.create ();
      cv = Condition.create ();
      job = None;
      epoch = 0;
      remaining = 0;
      errors = [];
      dead = [];
      finished = Array.make (max 0 (size - 1)) true;
      kills = [];
      dispatch_ix = -1;
      dispatches = 0;
      respawns = 0;
      zombies = [];
      stopped = false;
    }
  in
  Mutex.lock pool.m;
  Array.iter (spawn_slot pool) pool.slots;
  Mutex.unlock pool.m;
  pool

let arm_kill pool ~worker ~at_dispatch =
  if worker < 1 then
    invalid_arg
      (Printf.sprintf "Domain_pool.arm_kill: worker %d < 1 (worker 0 is the caller)" worker);
  if at_dispatch < 0 then
    invalid_arg (Printf.sprintf "Domain_pool.arm_kill: dispatch %d < 0" at_dispatch);
  if pool.size > 1 then begin
    (* Clamp the target into the pool's worker range so fault plans stay
       meaningful at any --domains setting. *)
    let w = 1 + ((worker - 1) mod (pool.size - 1)) in
    Mutex.lock pool.m;
    pool.kills <- (w, at_dispatch) :: pool.kills;
    Mutex.unlock pool.m
  end

let clear_kills pool =
  if pool.size > 1 then begin
    Mutex.lock pool.m;
    pool.kills <- [];
    Mutex.unlock pool.m
  end

let run ?deadline_s pool f =
  if pool.size = 1 then f 0
  else begin
    Mutex.lock pool.m;
    if pool.stopped then begin
      Mutex.unlock pool.m;
      invalid_arg "Domain_pool.run: pool is shut down"
    end;
    pool.job <- Some f;
    pool.epoch <- pool.epoch + 1;
    pool.remaining <- pool.size - 1;
    pool.errors <- [];
    pool.dead <- [];
    Array.fill pool.finished 0 (pool.size - 1) false;
    pool.dispatch_ix <- pool.dispatches;
    pool.dispatches <- pool.dispatches + 1;
    Condition.broadcast pool.cv;
    Mutex.unlock pool.m;
    (* The caller is worker 0; its exception must not skip the barrier,
       or the pool would be left mid-job. *)
    let mine = match f 0 with () -> None | exception e -> Some (0, e) in
    Mutex.lock pool.m;
    let hung = ref [] in
    let waited = ref 0.0 in
    (match deadline_s with
    | None ->
        while pool.remaining > 0 do
          Condition.wait pool.cv pool.m
        done
    | Some dl ->
        (* Watchdog barrier: no timed Condition.wait in the stdlib, so
           the caller polls. Only armed when a deadline is requested —
           the common path above stays a pure condvar wait. *)
        let t0 = Unix.gettimeofday () in
        while pool.remaining > 0 && !hung = [] do
          waited := Unix.gettimeofday () -. t0;
          if !waited >= dl then begin
            (* Abandon every slot that missed the barrier: bump its
               generation (a late finisher exits as a zombie), spawn a
               replacement parked on the current epoch, and repair the
               barrier count so this job terminates now. *)
            let stuck = ref [] in
            Array.iter
              (fun slot ->
                if not pool.finished.(slot.worker_ix - 1) then begin
                  stuck := slot.worker_ix :: !stuck;
                  slot.gen <- slot.gen + 1;
                  (match slot.dom with
                  | Some d -> pool.zombies <- d :: pool.zombies
                  | None -> ());
                  slot.dom <- None;
                  spawn_slot pool slot;
                  pool.respawns <- pool.respawns + 1
                end)
              pool.slots;
            pool.remaining <- 0;
            hung := List.sort compare !stuck
          end
          else begin
            Mutex.unlock pool.m;
            Unix.sleepf 2e-4;
            Mutex.lock pool.m
          end
        done);
    let errs = pool.errors in
    let dead = List.sort compare pool.dead in
    pool.job <- None;
    (* Heal injected deaths at the barrier: the dead domain's body has
       returned (joinable), so recycle the slot and respawn. *)
    let to_join = ref [] in
    List.iter
      (fun w ->
        let slot = pool.slots.(w - 1) in
        (match slot.dom with
        | Some d -> to_join := d :: !to_join
        | None -> ());
        slot.gen <- slot.gen + 1;
        slot.dom <- None;
        spawn_slot pool slot;
        pool.respawns <- pool.respawns + 1)
      dead;
    Mutex.unlock pool.m;
    List.iter Domain.join !to_join;
    match
      List.sort
        (fun (a, _) (b, _) -> compare (a : int) b)
        (Option.to_list mine @ errs)
    with
    | (_, e) :: _ -> raise e
    | [] ->
        if !hung <> [] then raise (Hung { workers = !hung; waited_s = !waited })
        else if dead <> [] then raise (Worker_died dead)
  end

let respawn_workers pool =
  if pool.size = 1 then 0
  else begin
    Mutex.lock pool.m;
    if pool.stopped then begin
      Mutex.unlock pool.m;
      0
    end
    else begin
      (* Recycle every slot: bump generations and wake the parked
         incarnations so they exit, then join them outside the lock and
         spawn fresh ones. Must be called between jobs. *)
      let olds =
        Array.map
          (fun slot ->
            slot.gen <- slot.gen + 1;
            let d = slot.dom in
            slot.dom <- None;
            d)
          pool.slots
      in
      Condition.broadcast pool.cv;
      Mutex.unlock pool.m;
      Array.iter (function Some d -> Domain.join d | None -> ()) olds;
      Mutex.lock pool.m;
      let n = ref 0 in
      Array.iter
        (fun slot ->
          spawn_slot pool slot;
          incr n;
          pool.respawns <- pool.respawns + 1)
        pool.slots;
      Mutex.unlock pool.m;
      !n
    end
  end

let shutdown pool =
  if pool.size > 1 then begin
    (* Idempotent and exception-safe: the domains to join are taken out
       of the pool under the lock, so a second (or re-entrant, e.g. a
       double at_exit) call finds nothing left and is a no-op rather
       than a second join or a hang. *)
    Mutex.lock pool.m;
    pool.stopped <- true;
    Condition.broadcast pool.cv;
    let doms =
      Array.to_list
        (Array.map
           (fun slot ->
             let d = slot.dom in
             slot.dom <- None;
             d)
           pool.slots)
    in
    let zombies = pool.zombies in
    pool.zombies <- [];
    Mutex.unlock pool.m;
    List.iter
      (function
        | Some d -> ( try Domain.join d with _ -> ())
        | None -> ())
      doms;
    List.iter (fun d -> try Domain.join d with _ -> ()) zombies
  end

let runner pool =
  { Ir_compile.workers = pool.size; run = (fun f -> run pool f) }

let recommended () = Domain.recommended_domain_count ()

(* Process-lifetime pools keyed by size. OCaml caps live domains (~128),
   so executors must share pools rather than owning one each; the pools
   are torn down at exit so the process does not terminate with domains
   parked on a condition variable. *)

let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_m = Mutex.create ()

let shared n =
  let n = max 1 n in
  Mutex.lock registry_m;
  let pool =
    match Hashtbl.find_opt registry n with
    | Some p -> p
    | None ->
        let p = create n in
        Hashtbl.add registry n p;
        p
  in
  Mutex.unlock registry_m;
  pool

let () =
  at_exit (fun () ->
      Mutex.lock registry_m;
      let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
      Hashtbl.reset registry;
      Mutex.unlock registry_m;
      List.iter shutdown pools)

(* A persistent pool of worker domains executing chunked parallel-loop
   jobs (§5.4.3). The caller participates as worker 0; [size - 1]
   domains are spawned once and parked on a condition variable between
   jobs, so per-dispatch cost is one lock + broadcast rather than a
   domain spawn. [run] doubles as a reusable barrier: it returns only
   once every worker has finished the job. *)

type t = {
  size : int;
  mutable domains : unit Domain.t array;
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;  (* Bumped per job; workers wait for a change. *)
  mutable remaining : int;  (* Workers still inside the current job. *)
  mutable errors : (int * exn) list;
  mutable stopped : bool;
}

let size t = t.size

let worker pool w =
  let my_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while (not pool.stopped) && pool.epoch = !my_epoch do
      Condition.wait pool.cv pool.m
    done;
    if pool.stopped then begin
      Mutex.unlock pool.m;
      running := false
    end
    else begin
      my_epoch := pool.epoch;
      let job = Option.get pool.job in
      Mutex.unlock pool.m;
      let err = match job w with () -> None | exception e -> Some e in
      Mutex.lock pool.m;
      (match err with
      | Some e -> pool.errors <- (w, e) :: pool.errors
      | None -> ());
      pool.remaining <- pool.remaining - 1;
      if pool.remaining = 0 then Condition.broadcast pool.cv;
      Mutex.unlock pool.m
    end
  done

let create size =
  if size < 1 then
    invalid_arg (Printf.sprintf "Domain_pool.create: size %d < 1" size);
  let pool =
    {
      size;
      domains = [||];
      m = Mutex.create ();
      cv = Condition.create ();
      job = None;
      epoch = 0;
      remaining = 0;
      errors = [];
      stopped = false;
    }
  in
  pool.domains <-
    Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker pool (i + 1)));
  pool

let run pool f =
  if pool.size = 1 then f 0
  else begin
    Mutex.lock pool.m;
    if pool.stopped then begin
      Mutex.unlock pool.m;
      invalid_arg "Domain_pool.run: pool is shut down"
    end;
    pool.job <- Some f;
    pool.epoch <- pool.epoch + 1;
    pool.remaining <- pool.size - 1;
    pool.errors <- [];
    Condition.broadcast pool.cv;
    Mutex.unlock pool.m;
    (* The caller is worker 0; its exception must not skip the barrier,
       or the pool would be left mid-job. *)
    let mine = match f 0 with () -> None | exception e -> Some (0, e) in
    Mutex.lock pool.m;
    while pool.remaining > 0 do
      Condition.wait pool.cv pool.m
    done;
    let errs = pool.errors in
    pool.job <- None;
    Mutex.unlock pool.m;
    match
      List.sort
        (fun (a, _) (b, _) -> compare (a : int) b)
        (Option.to_list mine @ errs)
    with
    | [] -> ()
    | (_, e) :: _ -> raise e
  end

let shutdown pool =
  if pool.size > 1 then begin
    Mutex.lock pool.m;
    let was_stopped = pool.stopped in
    pool.stopped <- true;
    Condition.broadcast pool.cv;
    Mutex.unlock pool.m;
    if not was_stopped then Array.iter Domain.join pool.domains
  end

let runner pool =
  { Ir_compile.workers = pool.size; run = (fun f -> run pool f) }

let recommended () = Domain.recommended_domain_count ()

(* Process-lifetime pools keyed by size. OCaml caps live domains (~128),
   so executors must share pools rather than owning one each; the pools
   are torn down at exit so the process does not terminate with domains
   parked on a condition variable. *)

let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_m = Mutex.create ()

let shared n =
  let n = max 1 n in
  Mutex.lock registry_m;
  let pool =
    match Hashtbl.find_opt registry n with
    | Some p -> p
    | None ->
        let p = create n in
        Hashtbl.add registry n p;
        p
  in
  Mutex.unlock registry_m;
  pool

let () =
  at_exit (fun () ->
      Mutex.lock registry_m;
      let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
      Hashtbl.reset registry;
      Mutex.unlock registry_m;
      List.iter shutdown pools)

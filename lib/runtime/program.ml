type section = {
  label : string;
  ensembles : string list;
  stmts : Ir.stmt list;
}

type param = {
  param_name : string;
  value_buf : string;
  grad_buf : string;
  lr_mult : float;
}

type t = {
  batch_size : int;
  buffers : Buffer_pool.t;
  forward : section list;
  backward : section list;
  params : param list;
  grad_sizes : (string * int) list;
  bounds_checks : bool;
}

let section ~label ~ensembles stmts = { label; ensembles; stmts }

let section_cost ?bytes_of ?width_of s =
  Ir_analysis.cost_of_stmts ?bytes_of ?width_of s.stmts

let width_of t buf =
  if Buffer_pool.mem t.buffers buf then
    float_of_int (Buffer_pool.elem_bytes t.buffers buf)
  else 4.0

let flops t dir =
  let sections = match dir with `Forward -> t.forward | `Backward -> t.backward in
  List.fold_left
    (fun acc s -> acc +. (section_cost s).Ir_analysis.flops)
    0.0 sections

let races t =
  let pool = t.buffers in
  let shape_of buf =
    if Buffer_pool.mem pool buf then Some (Buffer_pool.shape pool buf)
    else None
  in
  let regions =
    List.map (fun s -> ("forward/" ^ s.label, s.stmts)) t.forward
    @ List.map (fun s -> ("backward/" ^ s.label, s.stmts)) t.backward
  in
  List.filter_map
    (fun (label, stmts) ->
      match Ir_deps.analyze_stmts ~shape_of stmts with
      | [] -> None
      | reports -> Some (label, reports))
    regions

let analyze ?(live_out = []) t =
  let pool = t.buffers in
  let shape_of buf =
    if Buffer_pool.mem pool buf then Some (Buffer_pool.shape pool buf)
    else None
  in
  let storage_of buf =
    if Buffer_pool.mem pool buf then Some (Buffer_pool.precision pool buf)
    else None
  in
  let regions =
    List.map (fun s -> ("forward/" ^ s.label, [], s.stmts)) t.forward
    @ List.map (fun s -> ("backward/" ^ s.label, [], s.stmts)) t.backward
  in
  let phys buf = if Buffer_pool.mem pool buf then Buffer_pool.physical pool buf else buf in
  (* Buffers the program only ever reads (input data, parameter values,
     labels) are filled by the runtime before execution; pre-seeding them
     keeps the flow check focused on intra-program ordering. *)
  let written = Hashtbl.create 32 and read = Hashtbl.create 32 in
  List.iter
    (fun (_, _, stmts) ->
      List.iter (fun b -> Hashtbl.replace written (phys b) ()) (Ir.buffers_written stmts);
      List.iter (fun b -> Hashtbl.replace read (phys b) ()) (Ir.buffers_read stmts))
    regions;
  let assume_init =
    Hashtbl.fold (fun b () acc -> if Hashtbl.mem written b then acc else b :: acc) read []
  in
  let param_bufs =
    List.concat_map (fun p -> [ p.value_buf; p.grad_buf ]) t.params
  in
  let flow =
    {
      Ir_bounds.physical = phys;
      assume_init;
      live_out = List.map phys (param_bufs @ live_out);
    }
  in
  Ir_bounds.analyze ~shape_of ~flow ~storage_of regions

type section = {
  label : string;
  ensembles : string list;
  stmts : Ir.stmt list;
}

type param = {
  param_name : string;
  value_buf : string;
  grad_buf : string;
  lr_mult : float;
}

type t = {
  batch_size : int;
  buffers : Buffer_pool.t;
  forward : section list;
  backward : section list;
  params : param list;
  grad_sizes : (string * int) list;
  bounds_checks : bool;
  schedule_descr : string option;
}

let section ~label ~ensembles stmts = { label; ensembles; stmts }

(* The identity of the *network* this program was compiled from, not of
   this particular compilation: ensembles, parameters (with shapes),
   gradient sizes and batch size are fixed by the network description,
   while section structure, buffer aliasing and storage widths vary with
   the optimization config. Keying the tuning cache on this digest is
   what lets a schedule tuned against one compilation be found when the
   same network is compiled again under any config. *)
let fingerprint t =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int t.batch_size);
  (* As a set: how many sections mention an ensemble is a scheduling
     artifact (fusion, GEMM stacking), not network identity. *)
  let ens =
    List.sort_uniq compare (List.concat_map (fun s -> s.ensembles) t.forward)
  in
  List.iter (fun e -> Buffer.add_string b ("\ne:" ^ e)) ens;
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "\np:%s:%s:%s:%g" p.param_name p.value_buf p.grad_buf
           p.lr_mult);
      if Buffer_pool.mem t.buffers p.value_buf then
        Buffer.add_string b
          (":" ^ Shape.to_string (Buffer_pool.shape t.buffers p.value_buf)))
    t.params;
  List.iter
    (fun (n, k) -> Buffer.add_string b (Printf.sprintf "\ng:%s:%d" n k))
    t.grad_sizes;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The execution precision this program's buffers are packed at, in
   Precision.preset_to_string spelling: "int8" when any buffer is int8,
   else "f16" when any is half, else "f32". Part of the tuning-cache
   key so schedules tuned at one precision never leak into another. *)
let precision_tag t =
  List.fold_left
    (fun tag name ->
      match Buffer_pool.precision t.buffers name with
      | Precision.Any Precision.I8 -> "int8"
      | Precision.Any Precision.F16 -> if tag = "int8" then tag else "f16"
      | _ -> tag)
    "f32"
    (Buffer_pool.names t.buffers)

let section_cost ?bytes_of ?width_of s =
  Ir_analysis.cost_of_stmts ?bytes_of ?width_of s.stmts

let width_of t buf =
  if Buffer_pool.mem t.buffers buf then
    float_of_int (Buffer_pool.elem_bytes t.buffers buf)
  else 4.0

let flops t dir =
  let sections = match dir with `Forward -> t.forward | `Backward -> t.backward in
  List.fold_left
    (fun acc s -> acc +. (section_cost s).Ir_analysis.flops)
    0.0 sections

let races t =
  let pool = t.buffers in
  let shape_of buf =
    if Buffer_pool.mem pool buf then Some (Buffer_pool.shape pool buf)
    else None
  in
  let regions =
    List.map (fun s -> ("forward/" ^ s.label, s.stmts)) t.forward
    @ List.map (fun s -> ("backward/" ^ s.label, s.stmts)) t.backward
  in
  List.filter_map
    (fun (label, stmts) ->
      match Ir_deps.analyze_stmts ~shape_of stmts with
      | [] -> None
      | reports -> Some (label, reports))
    regions

let analyze ?(live_out = []) t =
  let pool = t.buffers in
  let shape_of buf =
    if Buffer_pool.mem pool buf then Some (Buffer_pool.shape pool buf)
    else None
  in
  let storage_of buf =
    if Buffer_pool.mem pool buf then Some (Buffer_pool.precision pool buf)
    else None
  in
  let regions =
    List.map (fun s -> ("forward/" ^ s.label, [], s.stmts)) t.forward
    @ List.map (fun s -> ("backward/" ^ s.label, [], s.stmts)) t.backward
  in
  let phys buf = if Buffer_pool.mem pool buf then Buffer_pool.physical pool buf else buf in
  (* Buffers the program only ever reads (input data, parameter values,
     labels) are filled by the runtime before execution; pre-seeding them
     keeps the flow check focused on intra-program ordering. *)
  let written = Hashtbl.create 32 and read = Hashtbl.create 32 in
  List.iter
    (fun (_, _, stmts) ->
      List.iter (fun b -> Hashtbl.replace written (phys b) ()) (Ir.buffers_written stmts);
      List.iter (fun b -> Hashtbl.replace read (phys b) ()) (Ir.buffers_read stmts))
    regions;
  let assume_init =
    Hashtbl.fold (fun b () acc -> if Hashtbl.mem written b then acc else b :: acc) read []
  in
  let param_bufs =
    List.concat_map (fun p -> [ p.value_buf; p.grad_buf ]) t.params
  in
  let flow =
    {
      Ir_bounds.physical = phys;
      assume_init;
      live_out = List.map phys (param_bufs @ live_out);
    }
  in
  Ir_bounds.analyze ~shape_of ~flow ~storage_of regions

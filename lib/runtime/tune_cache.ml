(* The persisted per-(model, machine) tuning cache.

   A generic, versioned, CRC-validated store of small string payloads
   keyed by a hex digest — this module knows nothing about schedules;
   the compiler's Schedule.to_payload/of_payload do the translation, so
   the runtime library stays below the compiler in the dependency
   order while Executor.prepare can still consult the cache.

   One entry per file, `<key>.tune` under the cache directory:

     LATTETUNE
     version 1
     key <hex digest>
     crc <crc32 of the payload bytes, %08lx>
     <name>=<value>
     ...

   Writes are atomic (temp file + rename, the Checkpoint discipline);
   lookups validate magic, schema version, key and checksum and answer
   [None] for anything that does not check out — including files written
   by a *future* schema version, which are rejected rather than
   misparsed. A corrupt cache can therefore cost a re-tune but never an
   error or a wrong schedule. *)

let schema_version = 1
let magic = "LATTETUNE"

(* What "this machine" means for cache keying: enough to invalidate a
   cache copied across meaningfully different hosts without trying to
   fingerprint microarchitecture. *)
let machine_id () =
  Printf.sprintf "%s/%d-bit/%d-cores" Sys.os_type Sys.word_size
    (Domain.recommended_domain_count ())

let key ~fingerprint ~machine ~safety ~precision =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ fingerprint; machine; safety; precision ]))

let default_dir () =
  Filename.concat (Filename.get_temp_dir_name ()) "latte-tune-cache"

let dir () =
  match Latte_env.tune_cache () with
  | Latte_env.Off -> None
  | Latte_env.Default -> Some (default_dir ())
  | Latte_env.Path p -> Some p

let enabled () = dir () <> None

let file_of dir key = Filename.concat dir (key ^ ".tune")

let payload_string kvs =
  String.concat "" (List.map (fun (k, v) -> k ^ "=" ^ v ^ "\n") kvs)

let store ~dir ~key kvs =
  List.iter
    (fun (k, v) ->
      if k = "" || String.contains k '=' || String.contains k '\n'
         || String.contains v '\n' then
        invalid_arg
          (Printf.sprintf "Tune_cache.store: invalid payload entry %S=%S" k v))
    kvs;
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let payload = payload_string kvs in
  let path = file_of dir key in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Printf.fprintf oc "%s\nversion %d\nkey %s\ncrc %08lx\n" magic
       schema_version key (Crc32.string payload);
     output_string oc payload;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let lookup ~dir ~key =
  let path = file_of dir key in
  if not (Sys.file_exists path) then None
  else
    let contents =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error _ | End_of_file -> ""
    in
    match String.split_on_char '\n' contents with
    | m :: v :: k :: c :: payload when m = magic -> (
        let field prefix line =
          let pl = String.length prefix in
          if String.length line > pl && String.sub line 0 pl = prefix then
            Some (String.sub line pl (String.length line - pl))
          else None
        in
        match (field "version " v, field "key " k, field "crc " c) with
        | Some ver, Some file_key, Some crc_hex
          when int_of_string_opt ver = Some schema_version && file_key = key ->
            let payload = String.concat "\n" payload in
            let ok_crc =
              match Int32.of_string_opt ("0x" ^ crc_hex) with
              | Some expect -> Int32.equal expect (Crc32.string payload)
              | None -> false
            in
            if not ok_crc then None
            else
              Some
                (String.split_on_char '\n' payload
                |> List.filter_map (fun line ->
                       match String.index_opt line '=' with
                       | Some i ->
                           Some
                             ( String.sub line 0 i,
                               String.sub line (i + 1)
                                 (String.length line - i - 1) )
                       | None -> None))
        | _ -> None)
    | _ -> None

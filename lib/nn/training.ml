type history = { iters : int list; losses : float list }

let mean_loss exec ~loss_buf =
  let loss = Executor.lookup exec loss_buf in
  Tensor.sum loss /. float_of_int (Tensor.numel loss)

let fit ?(log_every = 50) ?log ~solver ~exec ~data ~data_buf ~label_buf ~loss_buf
    ~iters () =
  let data_t = Executor.lookup exec data_buf in
  let labels_t = Executor.lookup exec label_buf in
  let iters_log = ref [] and losses = ref [] in
  for it = 0 to iters - 1 do
    Synthetic.fill_batch data ~batch_index:it ~data:data_t ~labels:labels_t;
    Solver.train_step solver;
    if it mod log_every = 0 || it = iters - 1 then begin
      let l = mean_loss exec ~loss_buf in
      iters_log := it :: !iters_log;
      losses := l :: !losses;
      match log with Some f -> f ~iter:it ~loss:l | None -> ()
    end
  done;
  { iters = List.rev !iters_log; losses = List.rev !losses }

let accuracy ~exec ~data ~data_buf ~label_buf ~output_buf =
  let data_t = Executor.lookup exec data_buf in
  let labels_t = Executor.lookup exec label_buf in
  let output = Executor.lookup exec output_buf in
  let batch = (Tensor.shape data_t).(0) in
  let n = (Tensor.shape data.Synthetic.features).(0) in
  let classes = Tensor.numel output / batch in
  let n_batches = n / batch in
  if n_batches = 0 then
    invalid_arg
      (Printf.sprintf
         "Training.accuracy: dataset has %d items, fewer than one batch of %d" n
         batch);
  let correct = ref 0 and total = ref 0 in
  for b = 0 to n_batches - 1 do
    Synthetic.fill_batch data ~batch_index:b ~data:data_t ~labels:labels_t;
    Executor.forward exec;
    for i = 0 to batch - 1 do
      let best = ref 0 and best_v = ref neg_infinity in
      for c = 0 to classes - 1 do
        let v = Tensor.get1 output ((i * classes) + c) in
        if v > !best_v then begin
          best_v := v;
          best := c
        end
      done;
      if !best = int_of_float (Tensor.get1 labels_t i) then incr correct;
      incr total
    done
  done;
  float_of_int !correct /. float_of_int !total

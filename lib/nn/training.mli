(** Training and evaluation drivers: the [solve(sgd, net)] loop of
    Figure 7. *)

type history = { iters : int list; losses : float list }

val fit :
  ?log_every:int ->
  ?log:(iter:int -> loss:float -> unit) ->
  solver:Solver.t ->
  exec:Executor.t ->
  data:Synthetic.dataset ->
  data_buf:string ->
  label_buf:string ->
  loss_buf:string ->
  iters:int ->
  unit ->
  history
(** Streams mini-batches from the dataset (wrapping around), runs
    forward/backward/update per iteration, and records the mean batch
    loss every [log_every] iterations. *)

val mean_loss : Executor.t -> loss_buf:string -> float

val accuracy :
  exec:Executor.t ->
  data:Synthetic.dataset ->
  data_buf:string ->
  label_buf:string ->
  output_buf:string ->
  float
(** Top-1 accuracy over the whole dataset, evaluated in batches with
    forward passes only. [output_buf] holds per-item class scores
    (e.g. the softmax ensemble's value buffer). Raises
    [Invalid_argument] when the dataset is smaller than one batch
    (there would be zero samples to score). *)

type method_ =
  | Sgd
  | Rmsprop of { decay : float; epsilon : float }
  | Adagrad of { epsilon : float }
  | Adam of { beta1 : float; beta2 : float; epsilon : float }

type params = {
  lr_policy : Lr_policy.t;
  momentum : float;
  weight_decay : float;
}

let default_params =
  { lr_policy = Lr_policy.Fixed 0.01; momentum = 0.9; weight_decay = 0.0 }

type pstate = {
  param : Program.param;
  value : Tensor.t;
  grad : Tensor.t;
  state1 : Tensor.t;  (* momentum / mean-square / first moment *)
  state2 : Tensor.t option;  (* Adam second moment *)
}

type t = {
  method_ : method_;
  params : params;
  states : pstate list;
  exec : Executor.t;
  clip_norm : float option;
  nesterov : bool;
  mutable iter : int;
  mutable lr_scale : float;
}

let create ?(params = default_params) ?clip_norm ?(nesterov = false) method_ exec =
  let prog = Executor.program exec in
  let states =
    List.map
      (fun (p : Program.param) ->
        let value = Executor.lookup exec p.value_buf in
        let grad = Executor.lookup exec p.grad_buf in
        let state1 = Tensor.create (Tensor.shape value) in
        let state2 =
          match method_ with
          | Adam _ -> Some (Tensor.create (Tensor.shape value))
          | Sgd | Rmsprop _ | Adagrad _ -> None
        in
        { param = p; value; grad; state1; state2 })
      prog.Program.params
  in
  { method_; params; states; exec; clip_norm; nesterov; iter = 0; lr_scale = 1.0 }

let iter t = t.iter

let lr_scale t = t.lr_scale

let set_lr_scale t s =
  if not (s > 0.0) then invalid_arg "Solver.set_lr_scale: scale must be > 0";
  t.lr_scale <- s

let reset_state t =
  List.iter
    (fun ps ->
      Tensor.fill ps.state1 0.0;
      Option.iter (fun s2 -> Tensor.fill s2 0.0) ps.state2)
    t.states

let learning_rate t = t.lr_scale *. Lr_policy.at t.params.lr_policy ~iter:t.iter

let update_param t ~lr ps =
  let n = Tensor.numel ps.value in
  let lr = lr *. ps.param.Program.lr_mult in
  let wd = t.params.weight_decay in
  match t.method_ with
  | Sgd ->
      let mom = t.params.momentum in
      if t.nesterov then
        for i = 0 to n - 1 do
          let w = Tensor.unsafe_get ps.value i in
          let g = Tensor.unsafe_get ps.grad i +. (wd *. w) in
          let v = (mom *. Tensor.unsafe_get ps.state1 i) +. (lr *. g) in
          Tensor.unsafe_set ps.state1 i v;
          (* Look-ahead step: w -= lr*g + mom*v'. *)
          Tensor.unsafe_set ps.value i (w -. ((lr *. g) +. (mom *. v)))
        done
      else
        for i = 0 to n - 1 do
          let w = Tensor.unsafe_get ps.value i in
          let g = Tensor.unsafe_get ps.grad i +. (wd *. w) in
          let v = (mom *. Tensor.unsafe_get ps.state1 i) +. (lr *. g) in
          Tensor.unsafe_set ps.state1 i v;
          Tensor.unsafe_set ps.value i (w -. v)
        done
  | Rmsprop { decay; epsilon } ->
      for i = 0 to n - 1 do
        let w = Tensor.unsafe_get ps.value i in
        let g = Tensor.unsafe_get ps.grad i +. (wd *. w) in
        let ms = (decay *. Tensor.unsafe_get ps.state1 i) +. ((1.0 -. decay) *. g *. g) in
        Tensor.unsafe_set ps.state1 i ms;
        Tensor.unsafe_set ps.value i (w -. (lr *. g /. (sqrt ms +. epsilon)))
      done
  | Adagrad { epsilon } ->
      for i = 0 to n - 1 do
        let w = Tensor.unsafe_get ps.value i in
        let g = Tensor.unsafe_get ps.grad i +. (wd *. w) in
        let acc = Tensor.unsafe_get ps.state1 i +. (g *. g) in
        Tensor.unsafe_set ps.state1 i acc;
        Tensor.unsafe_set ps.value i (w -. (lr *. g /. (sqrt acc +. epsilon)))
      done
  | Adam { beta1; beta2; epsilon } ->
      let m2 = Option.get ps.state2 in
      let step = float_of_int (t.iter + 1) in
      let c1 = 1.0 -. (beta1 ** step) and c2 = 1.0 -. (beta2 ** step) in
      for i = 0 to n - 1 do
        let w = Tensor.unsafe_get ps.value i in
        let g = Tensor.unsafe_get ps.grad i +. (wd *. w) in
        let m = (beta1 *. Tensor.unsafe_get ps.state1 i) +. ((1.0 -. beta1) *. g) in
        let v = (beta2 *. Tensor.unsafe_get m2 i) +. ((1.0 -. beta2) *. g *. g) in
        Tensor.unsafe_set ps.state1 i m;
        Tensor.unsafe_set m2 i v;
        let mhat = m /. c1 and vhat = v /. c2 in
        Tensor.unsafe_set ps.value i (w -. (lr *. mhat /. (sqrt vhat +. epsilon)))
      done

let apply_clipping t =
  match t.clip_norm with
  | None -> ()
  | Some limit ->
      let sq =
        List.fold_left
          (fun acc ps ->
            let g = ps.grad in
            acc +. Tensor.dot g g)
          0.0 t.states
      in
      let norm = sqrt sq in
      if norm > limit then begin
        let scale = limit /. norm in
        List.iter (fun ps -> Tensor.scale_inplace ps.grad scale) t.states
      end

let update t =
  apply_clipping t;
  let lr = learning_rate t in
  List.iter (update_param t ~lr) t.states;
  t.iter <- t.iter + 1

let train_step t =
  Executor.forward t.exec;
  Executor.backward t.exec;
  update t

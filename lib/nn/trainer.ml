type event =
  | Saved of { iter : int; path : string }
  | Save_failed of { iter : int; reason : string }
  | Divergence of { iter : int; reason : string }
  | Rolled_back of { iter : int; restored_iter : int; lr_scale : float }
  | Gave_up of { iter : int }

let event_to_string = function
  | Saved { iter; path } -> Printf.sprintf "iter %d: checkpoint saved to %s" iter path
  | Save_failed { iter; reason } ->
      Printf.sprintf "iter %d: checkpoint save failed (%s)" iter reason
  | Divergence { iter; reason } -> Printf.sprintf "iter %d: diverged (%s)" iter reason
  | Rolled_back { iter; restored_iter; lr_scale } ->
      Printf.sprintf "iter %d: rolled back to iteration %d, lr scale now %g" iter
        restored_iter lr_scale
  | Gave_up { iter } -> Printf.sprintf "iter %d: retries exhausted, stopping" iter

type report = {
  history : Training.history;
  events : event list;
  final_loss : float;
  completed : bool;
  rollbacks : int;
}

let ensure_dir dir =
  let rec mk d =
    if not (Sys.file_exists d) then begin
      let parent = Filename.dirname d in
      if parent <> d then mk parent;
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.is_directory d -> ()
    end
  in
  mk dir;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Trainer.fit: %s is not a directory" dir)

let rec take n = function
  | [] -> ([], [])
  | l when n = 0 -> ([], l)
  | x :: rest ->
      let kept, dropped = take (n - 1) rest in
      (x :: kept, dropped)

let fit ?(log_every = 50) ?log ?(faults = Fault.none) ?(checkpoint_every = 25)
    ?(keep = 3) ?(max_retries = 3) ~ckpt_dir ~solver ~exec ~data ~data_buf
    ~label_buf ~loss_buf ~iters () =
  if checkpoint_every <= 0 then invalid_arg "Trainer.fit: checkpoint_every >= 1";
  if keep <= 0 then invalid_arg "Trainer.fit: keep >= 1";
  ensure_dir ckpt_dir;
  (* Fail fast on a plan that poisons a buffer this program doesn't
     have, instead of crashing mid-run when the fault fires. *)
  List.iter
    (function
      | Fault.Poison { buf; _ } -> (
          match Executor.lookup_opt exec buf with
          | Some (_ : Tensor.t) -> ()
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Trainer.fit: fault plan poisons unknown buffer %s" buf))
      | _ -> ())
    (Fault.specs faults);
  let data_t = Executor.lookup exec data_buf in
  let labels_t = Executor.lookup exec label_buf in
  let prog = Executor.program exec in
  let events = ref [] (* newest first *) in
  let record e = events := e :: !events in
  (* Good checkpoints, newest first, as (completed-iterations, path). *)
  let good = ref [] in
  let save_ckpt c =
    let path = Filename.concat ckpt_dir (Printf.sprintf "ckpt-%06d.latte" c) in
    try
      Checkpoint.save ~faults exec path;
      good := (c, path) :: List.filter (fun (c', _) -> c' <> c) !good;
      record (Saved { iter = c; path });
      let kept, dropped = take keep !good in
      good := kept;
      List.iter
        (fun (_, p) -> try Sys.remove p with Sys_error _ -> ())
        dropped
    with Fault.Injected_crash reason ->
      (* The process "died" mid-write; the atomic writer guarantees the
         previous checkpoint at this path (if any) is still intact. *)
      record (Save_failed { iter = c; reason })
  in
  (* Restore the newest checkpoint that passes validation, dropping any
     that turn out corrupt or missing. Returns its iteration count. *)
  let rec restore_newest () =
    match !good with
    | [] -> None
    | (c, path) :: rest -> (
        match Checkpoint.load exec path with
        | () -> Some c
        | exception (Checkpoint.Corrupt _ | Sys_error _) ->
            good := rest;
            restore_newest ())
  in
  let grad_divergence () =
    List.fold_left
      (fun acc (p : Program.param) ->
        match acc with
        | Some _ -> acc
        | None ->
            let s = Tensor.sum (Executor.lookup exec p.grad_buf) in
            if Float.is_finite s then None
            else Some (Printf.sprintf "non-finite gradient in %s" p.grad_buf))
      None prog.Program.params
  in
  let iters_log = ref [] and losses = ref [] in
  let it = ref 0 in
  let rollbacks = ref 0 in
  let last_loss = ref Float.nan in
  let halted = ref false in
  save_ckpt 0;
  while !it < iters && not !halted do
    List.iter
      (fun (buf, v) -> Tensor.fill (Executor.lookup exec buf) v)
      (Fault.poisons_at faults ~iter:!it);
    Synthetic.fill_batch data ~batch_index:!it ~data:data_t ~labels:labels_t;
    Solver.train_step solver;
    let l = Training.mean_loss exec ~loss_buf in
    let log_step = !it mod log_every = 0 || !it = iters - 1 in
    let divergence =
      if not (Float.is_finite l) then Some (Printf.sprintf "non-finite loss %h" l)
      else if log_step then grad_divergence ()
      else None
    in
    match divergence with
    | Some reason ->
        record (Divergence { iter = !it; reason });
        if !rollbacks >= max_retries then begin
          record (Gave_up { iter = !it });
          halted := true
        end
        else begin
          match restore_newest () with
          | None ->
              record (Gave_up { iter = !it });
              halted := true
          | Some c ->
              (* Stale momentum computed from the diverged trajectory
                 could immediately re-diverge; drop it with the LR. *)
              Solver.reset_state solver;
              let scale = Solver.lr_scale solver /. 2.0 in
              Solver.set_lr_scale solver scale;
              incr rollbacks;
              record (Rolled_back { iter = !it; restored_iter = c; lr_scale = scale });
              it := c
        end
    | None ->
        last_loss := l;
        if log_step then begin
          iters_log := !it :: !iters_log;
          losses := l :: !losses;
          match log with Some f -> f ~iter:!it ~loss:l | None -> ()
        end;
        if (!it + 1) mod checkpoint_every = 0 then save_ckpt (!it + 1);
        incr it
  done;
  {
    history =
      { Training.iters = List.rev !iters_log; losses = List.rev !losses };
    events = List.rev !events;
    final_loss = !last_loss;
    completed = !it >= iters;
    rollbacks = !rollbacks;
  }

(** Solvers (§2.5): coordinate forward, backward and weight update.

    A solver owns per-parameter optimizer state (momentum, second
    moments) keyed on the program's learnable parameters and applies one
    update per {!step}, honoring each parameter's learning-rate
    multiplier ([Param(:bias, 2.0)] in Figure 4). *)

type method_ =
  | Sgd  (** Momentum SGD (Caffe-style: v := mom·v + lr·g; w := w − v). *)
  | Rmsprop of { decay : float; epsilon : float }
  | Adagrad of { epsilon : float }
  | Adam of { beta1 : float; beta2 : float; epsilon : float }

type params = {
  lr_policy : Lr_policy.t;
  momentum : float;  (** Used by {!constructor:method_.Sgd}. *)
  weight_decay : float;  (** L2 regularization coefficient. *)
}

val default_params : params

type t

val create :
  ?params:params ->
  ?clip_norm:float ->
  ?nesterov:bool ->
  method_ ->
  Executor.t ->
  t
(** [clip_norm] rescales the gradients when their global L2 norm
    exceeds it (before the update). [nesterov] switches SGD to
    Nesterov's accelerated form; ignored by the other methods. *)

val iter : t -> int
(** Number of updates applied so far. *)

val lr_scale : t -> float
(** Multiplicative factor applied on top of the learning-rate policy
    (1.0 initially). *)

val set_lr_scale : t -> float -> unit
(** Set the factor — the supervised trainer's backoff halves it after a
    divergence rollback. Raises [Invalid_argument] unless positive. *)

val reset_state : t -> unit
(** Zero all per-parameter optimizer state (momentum, squared-gradient
    accumulators, Adam moments). Used when rolling parameters back to a
    checkpoint, where stale momentum could immediately re-diverge. *)

val update : t -> unit
(** Apply one parameter update from the gradients currently in the
    program's gradient buffers, then advance the iteration counter. *)

val train_step : t -> unit
(** forward → backward → update. The caller fills data/label buffers
    beforehand. *)

val learning_rate : t -> float
(** The rate the next {!update} will use. *)

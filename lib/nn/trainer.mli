(** Self-healing supervised training: {!Training.fit} wrapped in a
    fault-tolerant supervisor.

    The supervisor adds the three runtime behaviours long-running
    training needs (§5.3 regime):

    - {b Periodic checkpointing with rotation}: every
      [checkpoint_every] completed iterations the parameters are saved
      atomically ({!Checkpoint.save}) into [ckpt_dir], keeping the last
      [keep] good checkpoints. A crash during a save (real or armed via
      {!Fault.Crash_save}) is survived: the previous checkpoint stays
      valid and training continues.
    - {b Divergence detection}: the mean batch loss is checked for
      NaN/Inf after every iteration, and every parameter gradient is
      checked at each logged step.
    - {b Rollback with learning-rate backoff}: on divergence the newest
      loadable checkpoint is restored (corrupt ones are skipped), the
      optimizer state is zeroed ({!Solver.reset_state}), the learning
      rate is halved ({!Solver.set_lr_scale}), and training resumes
      from the restored iteration. After [max_retries] rollbacks the
      run stops with [completed = false] and the full event history for
      the caller to inspect. *)

type event =
  | Saved of { iter : int; path : string }
      (** Checkpoint of the parameter state after [iter] completed
          iterations. *)
  | Save_failed of { iter : int; reason : string }
      (** A checkpoint write crashed; the previous checkpoint survives. *)
  | Divergence of { iter : int; reason : string }
      (** Non-finite loss or gradients detected at [iter]. *)
  | Rolled_back of { iter : int; restored_iter : int; lr_scale : float }
      (** Recovery: parameters restored to the checkpoint taken after
          [restored_iter] iterations; [lr_scale] is the new backoff. *)
  | Gave_up of { iter : int }
      (** Retry budget exhausted (or no loadable checkpoint). *)

val event_to_string : event -> string

type report = {
  history : Training.history;  (** Logged (iter, loss) points, as {!Training.fit}. *)
  events : event list;  (** Everything that went wrong and how it was handled. *)
  final_loss : float;  (** Mean batch loss at the last executed iteration. *)
  completed : bool;  (** [true] iff all [iters] iterations ran. *)
  rollbacks : int;  (** Number of checkpoint rollbacks performed. *)
}

val fit :
  ?log_every:int ->
  ?log:(iter:int -> loss:float -> unit) ->
  ?faults:Fault.t ->
  ?checkpoint_every:int ->
  ?keep:int ->
  ?max_retries:int ->
  ckpt_dir:string ->
  solver:Solver.t ->
  exec:Executor.t ->
  data:Synthetic.dataset ->
  data_buf:string ->
  label_buf:string ->
  loss_buf:string ->
  iters:int ->
  unit ->
  report
(** Supervised version of {!Training.fit} with the same data-feeding
    contract. [ckpt_dir] is created if missing; checkpoints are named
    [ckpt-NNNNNN.latte] by completed-iteration count (a checkpoint is
    taken at iteration 0, before any update, so rollback is always
    possible). Defaults: [log_every = 50], [checkpoint_every = 25],
    [keep = 3], [max_retries = 3], [faults = Fault.none]. *)

(** In-process data-parallel training with synchronized or lossy
    gradients (§3.1, §7.3 / Figure 20).

    Instantiates one compiled replica per worker (identical initial
    parameters). Each step, workers compute gradients on disjoint batch
    shards; then either

    - [Synchronized]: gradients are summed (the runtime's gradient
      summation) and one update is applied, after which parameters are
      broadcast back — semantically one large-batch SGD step; or
    - [Lossy]: every worker's gradient — all computed from the *same
      stale* parameters — is applied as its own update in sequence,
      reproducing the unsynchronized in-place updates Project Adam and
      Latte's ∇-field mode allow.

    Figure 20's claim is that the two reach the same accuracy.

    {b Elasticity}: an armed {!Fault.Kill_worker} in [faults] removes a
    worker's compute role mid-run. In [Synchronized] mode its batch
    slice is re-sharded round-robin across the survivors (every slice
    is still computed, so a fixed seed plus a fixed fault plan yields a
    deterministic run); in [Lossy] mode the dead replica's update is
    simply skipped. Worker 0's replica doubles as the parameter master,
    so killing worker 0 only removes its compute. The run fails only
    when every worker is dead. *)

type mode = Synchronized | Lossy

type t

val create :
  ?seed:int ->
  ?faults:Fault.t ->
  workers:int ->
  config:Config.t ->
  build:(unit -> Models.spec) ->
  solver_method:Solver.method_ ->
  solver_params:Solver.params ->
  mode ->
  t

val alive_workers : t -> step:int -> int list
(** Workers whose compute role survives at [step] under the fault plan
    (everyone when no kill fault is armed). *)

val step : t -> data:Synthetic.dataset -> batch_index:int -> float
(** One data-parallel step over [workers] consecutive batch shards;
    returns the mean loss across the computed shards. Raises [Failure]
    if the fault plan has killed every worker. *)

val train :
  t -> data:Synthetic.dataset -> iters:int ->
  ?log:(iter:int -> loss:float -> unit) -> unit -> unit

val accuracy : t -> data:Synthetic.dataset -> float
(** Top-1 accuracy of worker 0's replica (all replicas agree after a
    synchronized step; in lossy mode replicas share the final merged
    parameters). *)

val primary : t -> Executor.t

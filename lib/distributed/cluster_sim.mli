(** Cluster-level data parallelism simulator (§5.3, §6, Figures 18-19).

    Replays the runtime's execution strategy on an analytical timeline:
    each node computes forward then backward over its local batch; as
    each ensemble's backward section completes, its parameter gradients
    are handed to an asynchronous allreduce (MPI 3 Iallreduce in the
    paper) that proceeds concurrently with the remaining backward
    compute, serialized on the NIC. The step ends when both compute and
    the last reduction finish — reproducing the overlap that gives the
    paper its near-linear scaling. *)

type result = {
  nodes : int;
  local_batch : int;
  compute_seconds : float;
  step_seconds : float;
  comm_seconds : float;  (** Total wire time of the reductions. *)
  exposed_comm_seconds : float;  (** Portion not hidden by compute. *)
  images_per_second : float;
}

val allreduce_seconds : Machine.nic -> nodes:int -> bytes:float -> float
(** Ring allreduce: 2(n-1) stages of [bytes/n] each. *)

val broadcast_seconds : Machine.nic -> nodes:int -> bytes:float -> float
(** One-to-all broadcast of [bytes] over a binomial tree:
    ceil(log2 nodes) rounds, each a full-payload transfer — what a
    rolling model update pays to push new parameters to every serving
    replica. 0 for a single node. *)

type fleet_projection = {
  f_nodes : int;
  replica_rps : float;  (** Measured single-replica requests/second. *)
  fleet_rps : float;  (** Straggler-degraded aggregate throughput. *)
  rollout_broadcast_seconds : float;
      (** Parameter broadcast time of one rolling update. *)
  rollout_seconds : float;
      (** Broadcast plus one-node-at-a-time swaps ([swap_seconds] each). *)
}

val project_fleet :
  nic:Machine.nic ->
  replica_rps:float ->
  param_bytes:float ->
  ?swap_seconds:float ->
  ?stragglers:(int * float) list ->
  nodes_list:int list ->
  unit ->
  fleet_projection list
(** Extrapolate a single-node fleet measurement to [nodes_list] serving
    replicas. Unlike data-parallel training, replicas are independent:
    a straggler at [(node, factor)] serves at [replica_rps / factor]
    without gating the others. [param_bytes] is the active model's
    payload ({!Registry} records it per entry); [swap_seconds] (default
    0) is the per-node executor swap during a rolling update. Raises
    [Invalid_argument] for non-positive [replica_rps] or node counts. *)

val simulate_step :
  cpu:Machine.cpu ->
  nic:Machine.nic ->
  nodes:int ->
  local_batch:int ->
  prog:Program.t ->
  ?overlap:bool ->
  ?stragglers:(int * float) list ->
  unit ->
  result
(** [prog] must be compiled at batch size 1 (or any reference size); its
    section costs are scaled to [local_batch]. [overlap:false] models a
    runtime that synchronizes gradients only after backward completes
    (the ablation of the §5.3 design choice). [stragglers] is a list of
    [(node, factor)] compute-slowdown multipliers (see
    {!Fault.stragglers}); synchronous reductions wait for the slowest
    replica, so the worst in-range factor gates every section. *)

val strong_scaling :
  cpu:Machine.cpu ->
  nic:Machine.nic ->
  prog:Program.t ->
  global_batch:int ->
  nodes_list:int list ->
  result list
(** Figure 18: fixed global batch split across nodes. *)

val weak_scaling :
  cpu:Machine.cpu ->
  nic:Machine.nic ->
  prog:Program.t ->
  per_node_batch:int ->
  nodes_list:int list ->
  result list
(** Figure 19: fixed batch per node. *)

type recovery = {
  healthy : result;  (** One fault-free (possibly straggler-slowed) step. *)
  fail_step : int;
  last_checkpoint_step : int;
  lost_steps : int;  (** Steps recomputed after restoring. *)
  checkpoint_overhead_seconds : float;
  baseline_seconds : float;  (** Failure-free run, checkpointing included. *)
  total_seconds : float;  (** With the failure, restart and recompute. *)
  slowdown : float;  (** [total / baseline]. *)
}

val simulate_failure_recovery :
  cpu:Machine.cpu ->
  nic:Machine.nic ->
  nodes:int ->
  local_batch:int ->
  prog:Program.t ->
  ?stragglers:(int * float) list ->
  steps:int ->
  ckpt_every:int ->
  ckpt_write_seconds:float ->
  fail_at_step:int ->
  restart_seconds:float ->
  unit ->
  recovery
(** Node-failure timeline over the Figures 18–19 machinery: a run of
    [steps] data-parallel steps checkpoints every [ckpt_every] steps
    (each write costs [ckpt_write_seconds] of wall clock); a node dies
    at [fail_at_step], the job restarts ([restart_seconds]), reloads
    the last checkpoint, and recomputes the lost steps. Shows what
    checkpoint cadence a degraded cluster can afford. *)

type mode = Synchronized | Lossy

type worker = { spec : Models.spec; exec : Executor.t }

type t = {
  workers : worker array;
  solver : Solver.t;  (** Owns optimizer state, bound to worker 0. *)
  mode : mode;
  faults : Fault.t;
  grad_acc : (Program.param * Tensor.t) list;
      (** Synchronized-mode gradient accumulators, so a survivor can
          adopt a dead worker's batch slice without clobbering the
          gradients it already computed. *)
}

let create ?(seed = 42) ?(faults = Fault.none) ~workers ~config ~build
    ~solver_method ~solver_params mode =
  if workers < 1 then invalid_arg "Data_parallel.create: workers >= 1";
  let mk () =
    let spec = build () in
    let prog = Pipeline.compile ~seed config spec.Models.net in
    { spec; exec = Executor.prepare prog }
  in
  let workers = Array.init workers (fun _ -> mk ()) in
  let solver = Solver.create ~params:solver_params solver_method workers.(0).exec in
  let grad_acc =
    List.map
      (fun (p : Program.param) ->
        let value = Executor.lookup workers.(0).exec p.value_buf in
        (p, Tensor.create (Tensor.shape value)))
      (Executor.program workers.(0).exec).Program.params
  in
  { workers; solver; mode; faults; grad_acc }

let params_of w = (Executor.program w.exec).Program.params

let iter_params t f =
  List.iter f (params_of t.workers.(0))

(* Worker 0's replica is the parameter master: the solver updates it
   even when its *compute* role has been killed by the fault plan. Only
   surviving workers receive the refreshed parameters. *)
let broadcast t ~alive =
  let w0 = t.workers.(0) in
  iter_params t (fun (p : Program.param) ->
      let src = Executor.lookup w0.exec p.value_buf in
      List.iter
        (fun k ->
          if k > 0 then
            Tensor.blit ~src ~dst:(Executor.lookup t.workers.(k).exec p.value_buf))
        alive)

let alive_workers t ~step =
  let nw = Array.length t.workers in
  let dead = Fault.killed_workers t.faults ~step in
  List.filter (fun k -> not (List.mem k dead)) (List.init nw Fun.id)

let step t ~data ~batch_index =
  let nw = Array.length t.workers in
  let alive = alive_workers t ~step:batch_index in
  if alive = [] then
    failwith
      (Printf.sprintf "Data_parallel.step: all %d workers dead at step %d" nw
         batch_index);
  let alive_arr = Array.of_list alive in
  let na = Array.length alive_arr in
  (* Worker [k] computes forward/backward over batch slice [slice]. *)
  let run_slice k slice =
    let w = t.workers.(k) in
    let data_t = Executor.lookup w.exec (w.spec.Models.data_ens ^ ".value") in
    let labels_t = Executor.lookup w.exec w.spec.Models.label_buf in
    Synthetic.fill_batch data ~batch_index:((batch_index * nw) + slice) ~data:data_t
      ~labels:labels_t;
    Executor.forward w.exec;
    Executor.backward w.exec;
    let loss = Executor.lookup w.exec w.spec.Models.loss_buf in
    Tensor.sum loss /. float_of_int (Tensor.numel loss)
  in
  let losses = ref 0.0 and slices_run = ref 0 in
  let w0 = t.workers.(0) in
  (match t.mode with
  | Synchronized ->
      (* Gradient summation (§5.3) with elastic re-sharding: all [nw]
         batch slices are computed every step; a dead worker's slice is
         adopted round-robin by the survivors (so the effective batch —
         and, under a fixed seed, the whole run — stays deterministic),
         then one optimizer step and a broadcast. *)
      List.iter (fun (_, acc) -> Tensor.fill acc 0.0) t.grad_acc;
      for slice = 0 to nw - 1 do
        let k = alive_arr.(slice mod na) in
        losses := !losses +. run_slice k slice;
        incr slices_run;
        List.iter
          (fun ((p : Program.param), acc) ->
            Tensor.add_inplace acc (Executor.lookup t.workers.(k).exec p.grad_buf))
          t.grad_acc
      done;
      List.iter
        (fun ((p : Program.param), acc) ->
          Tensor.blit ~src:acc ~dst:(Executor.lookup w0.exec p.grad_buf))
        t.grad_acc;
      Solver.update t.solver
  | Lossy ->
      (* Every surviving worker's (stale) gradient is applied as its own
         update, in arrival order — the unsynchronized ∇-field
         semantics. A dead replica's slice is simply skipped. *)
      List.iter
        (fun k ->
          losses := !losses +. run_slice k k;
          incr slices_run)
        alive;
      List.iter
        (fun k ->
          if k > 0 then
            iter_params t (fun (p : Program.param) ->
                Tensor.blit
                  ~src:(Executor.lookup t.workers.(k).exec p.grad_buf)
                  ~dst:(Executor.lookup w0.exec p.grad_buf));
          Solver.update t.solver)
        alive);
  broadcast t ~alive;
  !losses /. float_of_int !slices_run

let train t ~data ~iters ?log () =
  for it = 0 to iters - 1 do
    let loss = step t ~data ~batch_index:it in
    match log with
    | Some f when it mod 20 = 0 || it = iters - 1 -> f ~iter:it ~loss
    | _ -> ()
  done

let accuracy t ~data =
  let w0 = t.workers.(0) in
  Training.accuracy ~exec:w0.exec ~data
    ~data_buf:(w0.spec.Models.data_ens ^ ".value")
    ~label_buf:w0.spec.Models.label_buf
    ~output_buf:(w0.spec.Models.output_ens ^ ".value")

let primary t = t.workers.(0).exec

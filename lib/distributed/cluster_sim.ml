type result = {
  nodes : int;
  local_batch : int;
  compute_seconds : float;
  step_seconds : float;
  comm_seconds : float;
  exposed_comm_seconds : float;
  images_per_second : float;
}

let allreduce_seconds (nic : Machine.nic) ~nodes ~bytes =
  if nodes <= 1 then 0.0
  else
    let stages = float_of_int (2 * (nodes - 1)) in
    let chunk = bytes /. float_of_int nodes in
    stages *. ((nic.latency_us *. 1e-6) +. (chunk /. (nic.bw_gbs *. 1e9)))

let broadcast_seconds (nic : Machine.nic) ~nodes ~bytes =
  if nodes <= 1 then 0.0
  else
    (* Binomial tree: the holders double each round, so ceil(log2 n)
       rounds each move the full payload once. *)
    let rounds = int_of_float (Float.ceil (Float.log2 (float_of_int nodes))) in
    float_of_int rounds
    *. ((nic.latency_us *. 1e-6) +. (bytes /. (nic.bw_gbs *. 1e9)))

type fleet_projection = {
  f_nodes : int;
  replica_rps : float;
  fleet_rps : float;
  rollout_broadcast_seconds : float;
  rollout_seconds : float;
}

let project_fleet ~nic ~replica_rps ~param_bytes ?(swap_seconds = 0.0)
    ?(stragglers = []) ~nodes_list () =
  if replica_rps <= 0.0 then
    invalid_arg
      (Printf.sprintf "Cluster_sim.project_fleet: replica_rps %g <= 0" replica_rps);
  List.map
    (fun nodes ->
      if nodes <= 0 then
        invalid_arg (Printf.sprintf "Cluster_sim.project_fleet: nodes %d <= 0" nodes);
      (* Serving replicas are independent (no gradient synchronization),
         so a straggler only loses its own share of the aggregate. *)
      let fleet_rps =
        let sum = ref 0.0 in
        for node = 0 to nodes - 1 do
          let factor =
            List.fold_left
              (fun acc (n, f) -> if n = node then Float.max acc f else acc)
              1.0 stragglers
          in
          sum := !sum +. (replica_rps /. factor)
        done;
        !sum
      in
      let bcast = broadcast_seconds nic ~nodes ~bytes:param_bytes in
      {
        f_nodes = nodes;
        replica_rps;
        fleet_rps;
        rollout_broadcast_seconds = bcast;
        (* One-node-at-a-time rolling swap after the broadcast, so the
           fleet never loses more than one replica of capacity. *)
        rollout_seconds = bcast +. (float_of_int nodes *. swap_seconds);
      })
    nodes_list

(* Gradient bytes released by a backward section: 4 bytes per learnable
   element of each of its ensembles. *)
let grad_bytes_of (prog : Program.t) (s : Program.section) =
  List.fold_left
    (fun acc ens ->
      match List.assoc_opt ens prog.grad_sizes with
      | Some n -> acc +. (4.0 *. float_of_int n)
      | None -> acc)
    0.0 s.Program.ensembles

let simulate_step ~cpu ~nic ~nodes ~local_batch ~(prog : Program.t)
    ?(overlap = true) ?(stragglers = []) () =
  (* Synchronous data parallelism: every per-ensemble reduction waits
     for the slowest replica, so one straggler gates the whole step.
     The effective compute multiplier is the worst armed factor among
     participating nodes. *)
  let slow =
    List.fold_left
      (fun acc (node, factor) ->
        if node >= 0 && node < nodes then Float.max acc factor else acc)
      1.0 stragglers
  in
  let replicate = float_of_int local_batch /. float_of_int prog.batch_size in
  let buf_bytes = Cost_model.buf_bytes_of prog in
  let est dirs = Cost_model.estimate_sections ~replicate cpu ~buf_bytes dirs in
  let fwd = est prog.forward in
  let bwd = est prog.backward in
  let compute_seconds = slow *. (fwd.total_seconds +. bwd.total_seconds) in
  (* Timeline: backward sections complete in order; each releases its
     gradients to the NIC, which serializes reductions. *)
  let t = ref (slow *. fwd.total_seconds) in
  let nic_free = ref !t in
  let comm = ref 0.0 in
  List.iter2
    (fun (sec : Program.section) (e : Cost_model.section_estimate) ->
      t := !t +. (slow *. e.seconds);
      let bytes = grad_bytes_of prog sec in
      if bytes > 0.0 && nodes > 1 then begin
        let dur = allreduce_seconds nic ~nodes ~bytes in
        comm := !comm +. dur;
        let start = Float.max !t !nic_free in
        nic_free := start +. dur
      end)
    prog.backward bwd.sections;
  let step_seconds =
    if overlap then Float.max !t !nic_free
    else
      (* Synchronize everything after backward completes. *)
      !t +. !comm
  in
  let exposed = step_seconds -. !t in
  {
    nodes;
    local_batch;
    compute_seconds;
    step_seconds;
    comm_seconds = !comm;
    exposed_comm_seconds = Float.max 0.0 exposed;
    images_per_second = float_of_int (nodes * local_batch) /. step_seconds;
  }

let strong_scaling ~cpu ~nic ~prog ~global_batch ~nodes_list =
  List.map
    (fun nodes ->
      let local_batch = max 1 (global_batch / nodes) in
      simulate_step ~cpu ~nic ~nodes ~local_batch ~prog ())
    nodes_list

let weak_scaling ~cpu ~nic ~prog ~per_node_batch ~nodes_list =
  List.map
    (fun nodes -> simulate_step ~cpu ~nic ~nodes ~local_batch:per_node_batch ~prog ())
    nodes_list

type recovery = {
  healthy : result;
  fail_step : int;
  last_checkpoint_step : int;
  lost_steps : int;
  checkpoint_overhead_seconds : float;
  baseline_seconds : float;
  total_seconds : float;
  slowdown : float;
}

let simulate_failure_recovery ~cpu ~nic ~nodes ~local_batch ~prog ?stragglers
    ~steps ~ckpt_every ~ckpt_write_seconds ~fail_at_step ~restart_seconds () =
  if steps <= 0 then invalid_arg "Cluster_sim.simulate_failure_recovery: steps >= 1";
  if ckpt_every <= 0 then
    invalid_arg "Cluster_sim.simulate_failure_recovery: ckpt_every >= 1";
  if fail_at_step < 0 || fail_at_step >= steps then
    invalid_arg "Cluster_sim.simulate_failure_recovery: fail_at_step in [0, steps)";
  let healthy = simulate_step ~cpu ~nic ~nodes ~local_batch ~prog ?stragglers () in
  let step_s = healthy.step_seconds in
  let checkpoint_overhead_seconds =
    float_of_int (steps / ckpt_every) *. ckpt_write_seconds
  in
  let baseline_seconds = (float_of_int steps *. step_s) +. checkpoint_overhead_seconds in
  let last_checkpoint_step = fail_at_step / ckpt_every * ckpt_every in
  let lost_steps = fail_at_step - last_checkpoint_step in
  let total_seconds =
    baseline_seconds +. restart_seconds +. (float_of_int lost_steps *. step_s)
  in
  {
    healthy;
    fail_step = fail_at_step;
    last_checkpoint_step;
    lost_steps;
    checkpoint_overhead_seconds;
    baseline_seconds;
    total_seconds;
    slowdown = total_seconds /. baseline_seconds;
  }

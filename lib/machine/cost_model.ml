type section_estimate = {
  label : string;
  gemm_flops : float;
  loop_flops : float;
  bytes : float;
  cores_used : float;
  seconds : float;
}

type estimate = {
  sections : section_estimate list;
  total_seconds : float;
}

(* Loop-only cost: the same statements with GEMM calls erased. The GEMM
   contribution is then total - loops. *)
let rec erase_gemm s =
  match s with
  | Ir.Gemm _ -> None
  | Ir.For l -> Some (Ir.For { l with body = List.filter_map erase_gemm l.body })
  | Ir.If (c, t, e) ->
      Some (Ir.If (c, List.filter_map erase_gemm t, List.filter_map erase_gemm e))
  | Ir.Store _ | Ir.Accum _ | Ir.Memset _ | Ir.Fusion_barrier _ | Ir.Extern _ ->
      Some s

(* Largest GEMM row count in the section, with loop variables bound to
   their lower bounds — a proxy for the parallelism a threaded BLAS can
   exploit inside one call. *)
let max_gemm_rows stmts =
  let tbl = Hashtbl.create 8 in
  let env v =
    match Hashtbl.find_opt tbl v with Some n -> n | None -> 0
  in
  let best = ref 0.0 in
  let rec go s =
    match s with
    | Ir.Gemm g ->
        best := Float.max !best (float_of_int (Ir_analysis.eval_iexpr env g.m))
    | Ir.For l ->
        Hashtbl.replace tbl l.var (Ir_analysis.eval_iexpr env l.lo);
        List.iter go l.body;
        Hashtbl.remove tbl l.var
    | Ir.If (_, t, e) ->
        List.iter go t;
        List.iter go e
    | Ir.Store _ | Ir.Accum _ | Ir.Memset _ | Ir.Fusion_barrier _ | Ir.Extern _ ->
        ()
  in
  List.iter go stmts;
  !best

let section_estimate ?(vectorized = true) ?(replicate = 1.0) ?width_of
    (m : Machine.cpu) ~buf_bytes (s : Program.section) =
  let scale (c : Ir_analysis.cost) =
    {
      Ir_analysis.flops = c.flops *. replicate;
      bytes = c.bytes *. replicate;
      parallel_iters =
        (if c.parallel_iters > 1.0 then c.parallel_iters *. replicate
         else c.parallel_iters);
    }
  in
  (* [bytes_of] charges Extern calls (softmax, loss, data copies) for
     streaming their operand buffers once; erase_gemm keeps Extern, so
     the charge lands in [loops] and the GEMM delta is unaffected. *)
  let total =
    scale
      (Ir_analysis.cost_of_stmts ~bytes_of:buf_bytes ?width_of s.Program.stmts)
  in
  let loops =
    scale
      (Ir_analysis.cost_of_stmts ~bytes_of:buf_bytes ?width_of
         (List.filter_map erase_gemm s.Program.stmts))
  in
  let gemm_flops = Float.max 0.0 (total.flops -. loops.flops) in
  let gemm_bytes = Float.max 0.0 (total.bytes -. loops.bytes) in
  let cores = float_of_int m.cores in
  (* Synthesized loops run on as many cores as their parallel
     annotations expose; GEMM calls are additionally parallel inside the
     library across their rows (MKL-style), which is why a framework
     with serial layer code but threaded BLAS — Caffe — still gets fast
     GEMMs but slow everything-else. *)
  let loop_cores = Float.min cores (Float.max 1.0 total.parallel_iters) in
  let gemm_rows = max_gemm_rows s.Program.stmts in
  let gemm_cores =
    Float.min cores (Float.max total.parallel_iters gemm_rows)
    |> Float.max 1.0
  in
  let peak = Machine.peak_gflops m *. 1e9 in
  let loop_eff =
    if vectorized then m.loop_efficiency_simd else m.loop_efficiency_scalar
  in
  let compute_time =
    (gemm_flops /. (peak *. m.gemm_efficiency) *. (cores /. gemm_cores))
    +. (loops.flops /. (peak *. loop_eff) *. (cores /. loop_cores))
  in
  (* Memory traffic: when each parallel task's working set fits in its
     cache share, most accesses hit cache — the benefit the paper's
     tiling and fusion deliver. Bandwidth is capped by how many cores
     are actually streaming. *)
  let touched =
    List.sort_uniq String.compare
      (Ir.buffers_read s.Program.stmts @ Ir.buffers_written s.Program.stmts)
  in
  let working_set = List.fold_left (fun acc b -> acc +. buf_bytes b) 0.0 touched in
  let ws_per_task = working_set /. Float.max 1.0 total.parallel_iters in
  let cache = m.cache_per_core_mb *. 1e6 in
  let reuse = if ws_per_task <= cache then 0.25 else 1.0 in
  let bw_of c = Float.min (m.mem_bw_gbs *. 1e9) (m.core_bw_gbs *. 1e9 *. c) in
  let mem_time =
    (loops.bytes *. reuse /. bw_of loop_cores)
    +. (gemm_bytes *. 0.5 (* GEMM is blocked *) /. bw_of gemm_cores)
  in
  let overhead = m.sync_overhead_us *. 1e-6 in
  let seconds = Float.max compute_time mem_time +. overhead in
  {
    label = s.Program.label;
    gemm_flops;
    loop_flops = loops.flops;
    bytes = total.bytes;
    cores_used = Float.max loop_cores gemm_cores;
    seconds;
  }

let estimate_sections ?vectorized ?replicate ?width_of m ~buf_bytes sections =
  let sections =
    List.map
      (section_estimate ?vectorized ?replicate ?width_of m ~buf_bytes)
      sections
  in
  {
    sections;
    total_seconds = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 sections;
  }

let buf_bytes_of (p : Program.t) name =
  (* Real storage bytes at the buffer's declared width, so packed (int8
     / f16) buffers cost a quarter / half of the f32 traffic. *)
  float_of_int
    (Buffer_pool.elem_bytes p.Program.buffers name
    * Shape.numel (Buffer_pool.shape p.Program.buffers name))

let program_time ?vectorized m (p : Program.t) dir =
  let buf_bytes = buf_bytes_of p in
  let width_of = Program.width_of p in
  let of_sections ss =
    (estimate_sections ?vectorized ~width_of m ~buf_bytes ss).total_seconds
  in
  match dir with
  | `Forward -> of_sections p.forward
  | `Backward -> of_sections p.backward
  | `Both -> of_sections p.forward +. of_sections p.backward

let images_per_second ?vectorized m p =
  float_of_int p.Program.batch_size /. program_time ?vectorized m p `Both

(** Analytical execution-time model for compiled programs.

    Costs a {!Program.t} section by section against a {!Machine.cpu}
    using a roofline-style model: GEMM flops run at the machine's GEMM
    efficiency, synthesized loops at the (scalar or SIMD) loop
    efficiency, memory traffic at the sustainable bandwidth with a
    cache-reuse discount when a parallel task's working set fits its
    cache share (which is how tiling and fusion show up in the model),
    plus a per-section parallel-region overhead. Parallel sections use
    [min(cores, parallel iterations)] cores. *)

type section_estimate = {
  label : string;
  gemm_flops : float;
  loop_flops : float;
  bytes : float;
  cores_used : float;
  seconds : float;
}

type estimate = {
  sections : section_estimate list;
  total_seconds : float;
}

val estimate_sections :
  ?vectorized:bool ->
  ?replicate:float ->
  ?width_of:(string -> float) ->
  Machine.cpu ->
  buf_bytes:(string -> float) ->
  Program.section list ->
  estimate
(** [replicate] scales per-batch work (flops, bytes, available parallel
    iterations) by a factor, so a program compiled at batch 1 can be
    costed for any local batch without allocating its buffers.
    [width_of] gives per-buffer element widths (default 4.0), so a
    quantized program's loads and stores cost their narrow storage —
    {!Program.width_of} supplies it from the buffer pool. *)

val buf_bytes_of : Program.t -> string -> float
(** Byte size of a named buffer in the program's pool, at its declared
    storage width (int8 buffers report a quarter of their f32 size). *)

val program_time :
  ?vectorized:bool ->
  Machine.cpu ->
  Program.t ->
  [ `Forward | `Backward | `Both ] ->
  float
(** Modeled seconds for one pass over the batch. *)

val images_per_second :
  ?vectorized:bool -> Machine.cpu -> Program.t -> float
(** Modeled training throughput: batch / (forward + backward time). *)

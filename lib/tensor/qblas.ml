(* GEMM over packed stores: the quantized counterpart of {!Blas}.

   Fast kernels exist for the combinations the int8 serving preset
   actually produces — int8 x int8 (integer accumulation, one
   rescale per output), and weight-only int8 against f32 activations —
   with a decoded-closure fallback covering every other kind mix (f16
   operands, packed C, ...). All kernels handle both transpose flags
   through row/column strides, so they accept exactly the calls
   {!Blas.gemm} does.

   op(A) is m x k and op(B) is k x n as in {!Blas}; [transa] means A is
   stored k x m. C is always m x n at [off_c]. *)

let ug = Bigarray.Array1.unsafe_get
let us = Bigarray.Array1.unsafe_set

(* Strides of op(A)[i,p]: (per-i, per-p). *)
let strides_a ~transa ~m ~k = if transa then (1, m) else (k, 1)

(* Strides of op(B)[p,j]: (per-p, per-j). *)
let strides_b ~transb ~n ~k = if transb then (1, k) else (n, 1)

let scale_c_f32 ~beta ~m ~n ~(c : Tensor.buffer) ~off_c =
  if beta = 0.0 then
    for i = off_c to off_c + (m * n) - 1 do
      us c i 0.0
    done
  else if beta <> 1.0 then
    for i = off_c to off_c + (m * n) - 1 do
      us c i (beta *. ug c i)
    done

let kernel_name a b c =
  match (a, b, c) with
  | Tensor.Store (Precision.F32, _, _), Tensor.Store (Precision.F32, _, _),
    Tensor.Store (Precision.F32, _, _) ->
      "gemm"
  | Tensor.Store (Precision.I8, _, _), Tensor.Store (Precision.I8, _, _),
    Tensor.Store (Precision.F32, _, _) ->
      "gemm_i8i8"
  | Tensor.Store (Precision.F32, _, _), Tensor.Store (Precision.I8, _, _),
    Tensor.Store (Precision.F32, _, _) ->
      "gemm_f32i8"
  | Tensor.Store (Precision.I8, _, _), Tensor.Store (Precision.F32, _, _),
    Tensor.Store (Precision.F32, _, _) ->
      "gemm_i8f32"
  | _ -> "gemm_mixed"

(* int8 x int8 -> f32: integer dot products (native int subsumes the
   int32 accumulator), one float rescale per C element. *)
let gemm_i8i8 ~alpha ~transa ~transb ~m ~n ~k ~qa ~(a : (int, Bigarray.int8_signed_elt, Bigarray.c_layout) Bigarray.Array1.t)
    ~off_a ~qb ~(b : (int, Bigarray.int8_signed_elt, Bigarray.c_layout) Bigarray.Array1.t) ~off_b
    ~(c : Tensor.buffer) ~off_c =
  let as_i, as_p = strides_a ~transa ~m ~k in
  let bs_p, bs_j = strides_b ~transb ~n ~k in
  let za = qa.Precision.zero_point and zb = qb.Precision.zero_point in
  let rescale = alpha *. qa.Precision.scale *. qb.Precision.scale in
  for i = 0 to m - 1 do
    let row_a = off_a + (i * as_i) in
    let row_c = off_c + (i * n) in
    for j = 0 to n - 1 do
      let col_b = off_b + (j * bs_j) in
      let acc = ref 0 in
      let ia = ref row_a and ib = ref col_b in
      let p = ref 0 in
      while !p + 3 < k do
        let a0 = ug a !ia - za and b0 = ug b !ib - zb in
        let a1 = ug a (!ia + as_p) - za and b1 = ug b (!ib + bs_p) - zb in
        let a2 = ug a (!ia + (2 * as_p)) - za
        and b2 = ug b (!ib + (2 * bs_p)) - zb in
        let a3 = ug a (!ia + (3 * as_p)) - za
        and b3 = ug b (!ib + (3 * bs_p)) - zb in
        acc := !acc + (a0 * b0) + (a1 * b1) + (a2 * b2) + (a3 * b3);
        ia := !ia + (4 * as_p);
        ib := !ib + (4 * bs_p);
        p := !p + 4
      done;
      while !p < k do
        acc := !acc + ((ug a !ia - za) * (ug b !ib - zb));
        ia := !ia + as_p;
        ib := !ib + bs_p;
        incr p
      done;
      let ci = row_c + j in
      us c ci (ug c ci +. (rescale *. float_of_int !acc))
    done
  done

(* Weight-only int8: f32 activations against int8 weights (B). *)
let gemm_f32i8 ~alpha ~transa ~transb ~m ~n ~k ~(a : Tensor.buffer) ~off_a ~qb
    ~(b : (int, Bigarray.int8_signed_elt, Bigarray.c_layout) Bigarray.Array1.t) ~off_b
    ~(c : Tensor.buffer) ~off_c =
  let as_i, as_p = strides_a ~transa ~m ~k in
  let bs_p, bs_j = strides_b ~transb ~n ~k in
  let zb = qb.Precision.zero_point in
  let rescale = alpha *. qb.Precision.scale in
  for i = 0 to m - 1 do
    let row_a = off_a + (i * as_i) in
    let row_c = off_c + (i * n) in
    for j = 0 to n - 1 do
      let col_b = off_b + (j * bs_j) in
      let acc = ref 0.0 in
      let ia = ref row_a and ib = ref col_b in
      let p = ref 0 in
      while !p + 3 < k do
        acc :=
          !acc
          +. (ug a !ia *. float_of_int (ug b !ib - zb))
          +. (ug a (!ia + as_p) *. float_of_int (ug b (!ib + bs_p) - zb))
          +. (ug a (!ia + (2 * as_p))
             *. float_of_int (ug b (!ib + (2 * bs_p)) - zb))
          +. (ug a (!ia + (3 * as_p))
             *. float_of_int (ug b (!ib + (3 * bs_p)) - zb));
        ia := !ia + (4 * as_p);
        ib := !ib + (4 * bs_p);
        p := !p + 4
      done;
      while !p < k do
        acc := !acc +. (ug a !ia *. float_of_int (ug b !ib - zb));
        ia := !ia + as_p;
        ib := !ib + bs_p;
        incr p
      done;
      let ci = row_c + j in
      us c ci (ug c ci +. (rescale *. !acc))
    done
  done

(* Activation-only int8: int8 A against f32 B. *)
let gemm_i8f32 ~alpha ~transa ~transb ~m ~n ~k ~qa
    ~(a : (int, Bigarray.int8_signed_elt, Bigarray.c_layout) Bigarray.Array1.t) ~off_a
    ~(b : Tensor.buffer) ~off_b ~(c : Tensor.buffer) ~off_c =
  let as_i, as_p = strides_a ~transa ~m ~k in
  let bs_p, bs_j = strides_b ~transb ~n ~k in
  let za = qa.Precision.zero_point in
  let rescale = alpha *. qa.Precision.scale in
  for i = 0 to m - 1 do
    let row_a = off_a + (i * as_i) in
    let row_c = off_c + (i * n) in
    for j = 0 to n - 1 do
      let col_b = off_b + (j * bs_j) in
      let acc = ref 0.0 in
      let ia = ref row_a and ib = ref col_b in
      for _p = 0 to k - 1 do
        acc := !acc +. (float_of_int (ug a !ia - za) *. ug b !ib);
        ia := !ia + as_p;
        ib := !ib + bs_p
      done;
      let ci = row_c + j in
      us c ci (ug c ci +. (rescale *. !acc))
    done
  done

(* Decoded fallback: any kind combination, including packed C. *)
let gemm_mixed ~alpha ~beta ~transa ~transb ~m ~n ~k ~a ~off_a ~b ~off_b ~c
    ~off_c =
  let ra = Tensor.store_reader a in
  let rb = Tensor.store_reader b in
  let rc = Tensor.store_reader c in
  let wc = Tensor.store_writer c in
  let as_i, as_p = strides_a ~transa ~m ~k in
  let bs_p, bs_j = strides_b ~transb ~n ~k in
  for i = 0 to m - 1 do
    let row_a = off_a + (i * as_i) in
    let row_c = off_c + (i * n) in
    for j = 0 to n - 1 do
      let col_b = off_b + (j * bs_j) in
      let acc = ref 0.0 in
      let ia = ref row_a and ib = ref col_b in
      for _p = 0 to k - 1 do
        acc := !acc +. (ra !ia *. rb !ib);
        ia := !ia + as_p;
        ib := !ib + bs_p
      done;
      let ci = row_c + j in
      let prev = if beta = 0.0 then 0.0 else beta *. rc ci in
      wc ci (prev +. (alpha *. !acc))
    done
  done

let gemm ?(alpha = 1.0) ?(beta = 1.0) ~transa ~transb ~m ~n ~k ~a ?(off_a = 0)
    ~b ?(off_b = 0) ~c ?(off_c = 0) () =
  match (a, b, c) with
  | Tensor.Store (Precision.F32, _, ga), Tensor.Store (Precision.F32, _, gb),
    Tensor.Store (Precision.F32, _, gc) ->
      Blas.gemm ~alpha ~beta ~transa ~transb ~m ~n ~k ~a:ga.Tensor.data ~off_a
        ~b:gb.Tensor.data ~off_b ~c:gc.Tensor.data ~off_c ()
  | Tensor.Store (Precision.I8, qa, ga), Tensor.Store (Precision.I8, qb, gb),
    Tensor.Store (Precision.F32, _, gc) ->
      scale_c_f32 ~beta ~m ~n ~c:gc.Tensor.data ~off_c;
      gemm_i8i8 ~alpha ~transa ~transb ~m ~n ~k ~qa ~a:ga.Tensor.data ~off_a
        ~qb ~b:gb.Tensor.data ~off_b ~c:gc.Tensor.data ~off_c
  | Tensor.Store (Precision.F32, _, ga), Tensor.Store (Precision.I8, qb, gb),
    Tensor.Store (Precision.F32, _, gc) ->
      scale_c_f32 ~beta ~m ~n ~c:gc.Tensor.data ~off_c;
      gemm_f32i8 ~alpha ~transa ~transb ~m ~n ~k ~a:ga.Tensor.data ~off_a ~qb
        ~b:gb.Tensor.data ~off_b ~c:gc.Tensor.data ~off_c
  | Tensor.Store (Precision.I8, qa, ga), Tensor.Store (Precision.F32, _, gb),
    Tensor.Store (Precision.F32, _, gc) ->
      scale_c_f32 ~beta ~m ~n ~c:gc.Tensor.data ~off_c;
      gemm_i8f32 ~alpha ~transa ~transb ~m ~n ~k ~qa ~a:ga.Tensor.data ~off_a
        ~b:gb.Tensor.data ~off_b ~c:gc.Tensor.data ~off_c
  | _ -> gemm_mixed ~alpha ~beta ~transa ~transb ~m ~n ~k ~a ~off_a ~b ~off_b ~c ~off_c

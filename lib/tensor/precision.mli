(** Storage precisions as a GADT over [Bigarray] kinds.

    Each constructor pins both the OCaml element type ['a] and the
    Bigarray representation ['b], so a packed tensor can be opened with
    one match and accessed at its native width. f16 is stored as IEEE
    binary16 bit patterns in [int16_unsigned] cells; int8 as signed
    bytes under a symmetric code [real = scale * (q - zero_point)].
    Accumulation is always wide: f32 for float storage, native int
    (>= 32 bits, standing in for int32) for int8 storage. *)

type ('a, 'b) kind =
  | F64 : (float, Bigarray.float64_elt) kind
  | F32 : (float, Bigarray.float32_elt) kind
  | F16 : (int, Bigarray.int16_unsigned_elt) kind
  | I8 : (int, Bigarray.int8_signed_elt) kind

type any = Any : (_, _) kind -> any  (** Existentially packed kind. *)

val name : ('a, 'b) kind -> string
(** ["f64"], ["f32"], ["f16"], ["int8"]. *)

val any_name : any -> string
val bytes_per_element : ('a, 'b) kind -> int
val any_bytes : any -> int
val bigarray_kind : ('a, 'b) kind -> ('a, 'b) Bigarray.kind

type accum = Acc_f32 | Acc_i32
(** Accumulation width paired with a storage kind. *)

val accum_of : ('a, 'b) kind -> accum
val accum_name : accum -> string

(** {1 Quantization parameters} *)

type qparams = { scale : float; zero_point : int }
(** Affine code for integer storage; the identity ({!qid}) for float
    storage. This codebase always calibrates symmetrically
    ([zero_point = 0]); the field exists so asymmetric codes type-check
    and fast kernels can assert the symmetric case. *)

val qid : qparams
(** [{ scale = 1.0; zero_point = 0 }]. *)

val qparams_of_absmax : float -> qparams
(** Symmetric int8 code covering [[-absmax, absmax]]:
    [scale = max absmax 1e-8 / 127], [zero_point = 0]. *)

val quantize : qparams -> float -> int
(** Round-to-nearest then clamp to [[-128, 127]]. For values inside the
    calibrated range, [|dequantize qp (quantize qp v) - v| <= scale/2]. *)

val dequantize : qparams -> int -> float

(** {1 binary16 conversion} *)

val f16_encode : float -> int
(** Round-to-nearest-even binary16 bits (0..0xffff); overflow saturates
    to infinity, NaN maps to a quiet NaN pattern. *)

val f16_decode : int -> float
(** Table-driven decode (lazy 65536-entry table). *)

val f16_of_float : float -> int
val float_of_f16 : int -> float

(** {1 User-facing presets} *)

type preset = [ `F32 | `F16 | `I8 ]

val preset_to_string : preset -> string
val preset_of_string : string -> preset option
val preset_names : string list

(** {1 Observed dynamic ranges (calibration input)} *)

type range = { mutable lo : float; mutable hi : float; mutable seen : int }

val range_empty : unit -> range
val range_update : range -> float -> unit
val range_absmax : range -> float
(** 0 when nothing was observed. *)

(** GEMM over packed stores — the quantized counterpart of {!Blas}.

    [gemm] computes [C := alpha * op(A) * op(B) + beta * C] with the
    same conventions as {!Blas.gemm}, but the operands are
    {!Tensor.store}s of any precision. Integer operands are decoded
    through their {!Precision.qparams}; specialized kernels cover the
    int8 x int8 (integer accumulation) and weight-only int8 cases, a
    decoded fallback handles every other combination. All-f32 calls
    delegate to {!Blas.gemm} and are bit-identical to it. *)

val kernel_name : Tensor.store -> Tensor.store -> Tensor.store -> string
(** Which kernel a (A, B, C) kind combination dispatches to: ["gemm"],
    ["gemm_i8i8"], ["gemm_f32i8"], ["gemm_i8f32"] or ["gemm_mixed"]. *)

val gemm :
  ?alpha:float ->
  ?beta:float ->
  transa:bool ->
  transb:bool ->
  m:int ->
  n:int ->
  k:int ->
  a:Tensor.store ->
  ?off_a:int ->
  b:Tensor.store ->
  ?off_b:int ->
  c:Tensor.store ->
  ?off_c:int ->
  unit ->
  unit

(* The representation is kind-polymorphic: ['a] is the OCaml element
   type, ['b] the Bigarray element representation (see
   {!Precision.kind}). [t] pins the historical f32 case so the rest of
   the codebase reads exactly as before; packed precisions travel as
   {!store} values. *)
type ('a, 'b) gen = {
  data : ('a, 'b, Bigarray.c_layout) Bigarray.Array1.t;
  shape : Shape.t;
}

type buffer =
  (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = (float, Bigarray.float32_elt) gen

let create shape =
  let n = Shape.numel shape in
  let data = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout n in
  Bigarray.Array1.fill data 0.0;
  { data; shape }

let of_buffer data shape =
  if Bigarray.Array1.dim data <> Shape.numel shape then
    invalid_arg
      (Printf.sprintf "Tensor.of_buffer: buffer size %d <> shape %s"
         (Bigarray.Array1.dim data) (Shape.to_string shape));
  { data; shape }

let scalar v =
  let t = create [||] in
  Bigarray.Array1.set t.data 0 v;
  t

let shape t = t.shape
let numel t = Shape.numel t.shape
let data t = t.data

let of_array shape a =
  if Array.length a <> Shape.numel shape then
    invalid_arg "Tensor.of_array: element count mismatch";
  let t = create shape in
  Array.iteri (fun i v -> Bigarray.Array1.set t.data i v) a;
  t

let to_array t = Array.init (numel t) (fun i -> Bigarray.Array1.get t.data i)

let get t idx = Bigarray.Array1.get t.data (Shape.ravel t.shape idx)
let set t idx v = Bigarray.Array1.set t.data (Shape.ravel t.shape idx) v

let get1 t i =
  if i < 0 || i >= numel t then invalid_arg "Tensor.get1: out of bounds";
  Bigarray.Array1.get t.data i

let set1 t i v =
  if i < 0 || i >= numel t then invalid_arg "Tensor.set1: out of bounds";
  Bigarray.Array1.set t.data i v

let unsafe_get t i = Bigarray.Array1.unsafe_get t.data i
let unsafe_set t i v = Bigarray.Array1.unsafe_set t.data i v

let fill t v = Bigarray.Array1.fill t.data v

let copy t =
  let t' = create t.shape in
  Bigarray.Array1.blit t.data t'.data;
  t'

let blit ~src ~dst =
  if not (Shape.equal src.shape dst.shape) then
    invalid_arg "Tensor.blit: shape mismatch";
  Bigarray.Array1.blit src.data dst.data

let reshape t shape =
  if Shape.numel shape <> numel t then
    invalid_arg
      (Printf.sprintf "Tensor.reshape: %s -> %s changes element count"
         (Shape.to_string t.shape) (Shape.to_string shape));
  { data = t.data; shape }

let sub_left t i =
  if Shape.rank t.shape = 0 then invalid_arg "Tensor.sub_left: scalar";
  let d0 = t.shape.(0) in
  if i < 0 || i >= d0 then invalid_arg "Tensor.sub_left: out of bounds";
  let rest = Shape.drop_dim t.shape 0 in
  let n = Shape.numel rest in
  { data = Bigarray.Array1.sub t.data (i * n) n; shape = rest }

let init shape f =
  let t = create shape in
  Shape.iter shape (fun idx -> set t idx (f idx));
  t

let map f t =
  let t' = create t.shape in
  for i = 0 to numel t - 1 do
    unsafe_set t' i (f (unsafe_get t i))
  done;
  t'

let map_inplace f t =
  for i = 0 to numel t - 1 do
    unsafe_set t i (f (unsafe_get t i))
  done

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.map2: shape mismatch";
  let t' = create a.shape in
  for i = 0 to numel a - 1 do
    unsafe_set t' i (f (unsafe_get a i) (unsafe_get b i))
  done;
  t'

let iteri f t =
  for i = 0 to numel t - 1 do
    f i (unsafe_get t i)
  done

let add_inplace dst src =
  if not (Shape.equal dst.shape src.shape) then
    invalid_arg "Tensor.add_inplace: shape mismatch";
  for i = 0 to numel dst - 1 do
    unsafe_set dst i (unsafe_get dst i +. unsafe_get src i)
  done

let scale_inplace t alpha =
  for i = 0 to numel t - 1 do
    unsafe_set t i (alpha *. unsafe_get t i)
  done

let axpy ~alpha ~x ~y =
  if not (Shape.equal x.shape y.shape) then
    invalid_arg "Tensor.axpy: shape mismatch";
  for i = 0 to numel x - 1 do
    unsafe_set y i ((alpha *. unsafe_get x i) +. unsafe_get y i)
  done

let sum t =
  let acc = ref 0.0 in
  for i = 0 to numel t - 1 do
    acc := !acc +. unsafe_get t i
  done;
  !acc

let max_value t =
  if numel t = 0 then invalid_arg "Tensor.max_value: empty tensor";
  let m = ref (unsafe_get t 0) in
  for i = 1 to numel t - 1 do
    let v = unsafe_get t i in
    if v > !m then m := v
  done;
  !m

let argmax t =
  if numel t = 0 then invalid_arg "Tensor.argmax: empty tensor";
  let m = ref (unsafe_get t 0) and mi = ref 0 in
  for i = 1 to numel t - 1 do
    let v = unsafe_get t i in
    if v > !m then begin
      m := v;
      mi := i
    end
  done;
  !mi

let dot a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.dot: shape mismatch";
  let acc = ref 0.0 in
  for i = 0 to numel a - 1 do
    acc := !acc +. (unsafe_get a i *. unsafe_get b i)
  done;
  !acc

let l2_norm t = sqrt (dot t t)

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let m = ref 0.0 in
  for i = 0 to numel a - 1 do
    let d = Float.abs (unsafe_get a i -. unsafe_get b i) in
    if d > !m then m := d
  done;
  !m

let approx_equal ?(tol = 1e-5) a b =
  if not (Shape.equal a.shape b.shape) then false
  else begin
    let ok = ref true in
    for i = 0 to numel a - 1 do
      let x = unsafe_get a i and y = unsafe_get b i in
      let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
      if Float.abs (x -. y) > tol *. scale then ok := false
    done;
    !ok
  end

let fill_uniform rng t ~lo ~hi =
  for i = 0 to numel t - 1 do
    unsafe_set t i (Rng.uniform rng ~lo ~hi)
  done

let fill_gaussian rng t ~mean ~sigma =
  for i = 0 to numel t - 1 do
    unsafe_set t i (Rng.gaussian_scaled rng ~mean ~sigma)
  done

let fill_xavier rng t ~fan_in ~fan_out =
  for i = 0 to numel t - 1 do
    unsafe_set t i (Rng.xavier rng ~fan_in ~fan_out)
  done

let pp fmt t =
  let n = numel t in
  let shown = min n 8 in
  Format.fprintf fmt "Tensor<%s>[" (Shape.to_string t.shape);
  for i = 0 to shown - 1 do
    if i > 0 then Format.fprintf fmt "; ";
    Format.fprintf fmt "%g" (unsafe_get t i)
  done;
  if n > shown then Format.fprintf fmt "; ...";
  Format.fprintf fmt "]"

(* ------------------------------------------------------------------ *)
(* Packed stores: a tensor of any storage precision                    *)
(* ------------------------------------------------------------------ *)

type store =
  | Store : ('a, 'b) Precision.kind * Precision.qparams * ('a, 'b) gen -> store

let encode : type a b. (a, b) Precision.kind -> Precision.qparams -> float -> a
    =
 fun k qp v ->
  match k with
  | Precision.F64 -> v
  | Precision.F32 -> v
  | Precision.F16 -> Precision.f16_encode v
  | Precision.I8 -> Precision.quantize qp v

let gen_create : type a b. (a, b) Precision.kind -> Shape.t -> (a, b) gen =
 fun k shape ->
  let n = Shape.numel shape in
  let data =
    Bigarray.Array1.create (Precision.bigarray_kind k) Bigarray.c_layout n
  in
  let zero : a =
    match k with
    | Precision.F64 -> 0.0
    | Precision.F32 -> 0.0
    | Precision.F16 -> 0
    | Precision.I8 -> 0
  in
  Bigarray.Array1.fill data zero;
  { data; shape }

let store_of_f32 t = Store (Precision.F32, Precision.qid, t)

let store_fill (Store (k, qp, g)) v =
  Bigarray.Array1.fill g.data (encode k qp v)

let store_create ?(qparams = Precision.qid) (Precision.Any k) shape =
  let st = Store (k, qparams, gen_create k shape) in
  (* Raw zero is the encoded zero for every symmetric code we build,
     but re-fill under the qparams so asymmetric codes start at 0.0. *)
  if qparams.Precision.zero_point <> 0 then store_fill st 0.0;
  st

let store_shape (Store (_, _, g)) = g.shape
let store_numel (Store (_, _, g)) = Shape.numel g.shape
let store_kind (Store (k, _, _)) = Precision.Any k
let store_qparams (Store (_, qp, _)) = qp
let store_elem_bytes st = Precision.any_bytes (store_kind st)
let store_bytes st = store_elem_bytes st * store_numel st

let store_f32_data (Store (k, _, g)) : buffer option =
  match k with Precision.F32 -> Some g.data | _ -> None

let store_f32_opt (Store (k, _, g)) : t option =
  match k with Precision.F32 -> Some g | _ -> None

(* Identity of the backing storage, for aliasing analyses: two stores
   alias iff their data blocks are the same value. *)
let store_data_id (Store (_, _, g)) = Obj.repr g.data

(* Unsafe decoded accessors, specialized per kind once so the per-
   element work is a load (plus a table read or scale multiply). *)
let store_reader (Store (k, qp, g)) : int -> float =
  let data = g.data in
  match k with
  | Precision.F64 -> fun i -> Bigarray.Array1.unsafe_get data i
  | Precision.F32 -> fun i -> Bigarray.Array1.unsafe_get data i
  | Precision.F16 ->
      fun i -> Precision.f16_decode (Bigarray.Array1.unsafe_get data i)
  | Precision.I8 ->
      let s = qp.Precision.scale and z = qp.Precision.zero_point in
      fun i -> s *. float_of_int (Bigarray.Array1.unsafe_get data i - z)

let store_writer (Store (k, qp, g)) : int -> float -> unit =
  let data = g.data in
  match k with
  | Precision.F64 -> fun i v -> Bigarray.Array1.unsafe_set data i v
  | Precision.F32 -> fun i v -> Bigarray.Array1.unsafe_set data i v
  | Precision.F16 ->
      fun i v -> Bigarray.Array1.unsafe_set data i (Precision.f16_encode v)
  | Precision.I8 ->
      fun i v -> Bigarray.Array1.unsafe_set data i (Precision.quantize qp v)

let store_get1 st i =
  if i < 0 || i >= store_numel st then invalid_arg "Tensor.store_get1: out of bounds";
  store_reader st i

let store_set1 st i v =
  if i < 0 || i >= store_numel st then invalid_arg "Tensor.store_set1: out of bounds";
  store_writer st i v

let store_reshape (Store (k, qp, g)) shape =
  if Shape.numel shape <> Shape.numel g.shape then
    invalid_arg
      (Printf.sprintf "Tensor.store_reshape: %s -> %s changes element count"
         (Shape.to_string g.shape) (Shape.to_string shape));
  Store (k, qp, { g with shape })

let store_to_f32 st =
  let t = create (store_shape st) in
  let rd = store_reader st in
  for i = 0 to numel t - 1 do
    unsafe_set t i (rd i)
  done;
  t

let store_blit_from_f32 ~src ~dst =
  if not (Shape.equal src.shape (store_shape dst)) then
    invalid_arg "Tensor.store_blit_from_f32: shape mismatch";
  let wr = store_writer dst in
  for i = 0 to numel src - 1 do
    wr i (unsafe_get src i)
  done

let store_absmax st =
  let rd = store_reader st in
  let m = ref 0.0 in
  for i = 0 to store_numel st - 1 do
    let a = Float.abs (rd i) in
    if a > !m then m := a
  done;
  !m

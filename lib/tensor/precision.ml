(* Storage precisions as a GADT over Bigarray kinds (the ocannl idiom):
   each constructor pins both the OCaml element type and the Bigarray
   element representation, so a packed tensor can be opened with a
   single match and accessed at its native width.

   f16 is stored as IEEE-754 binary16 bit patterns in an
   int16_unsigned Bigarray (OCaml has no native half type); int8 is
   stored as signed bytes under a symmetric affine code
   [real = scale * (q - zero_point)]. Accumulation stays wide: f32 for
   float storage, the native int (>= 32 bits) for int8. *)

type ('a, 'b) kind =
  | F64 : (float, Bigarray.float64_elt) kind
  | F32 : (float, Bigarray.float32_elt) kind
  | F16 : (int, Bigarray.int16_unsigned_elt) kind
  | I8 : (int, Bigarray.int8_signed_elt) kind

type any = Any : (_, _) kind -> any

let name : type a b. (a, b) kind -> string = function
  | F64 -> "f64"
  | F32 -> "f32"
  | F16 -> "f16"
  | I8 -> "int8"

let any_name (Any k) = name k

let bytes_per_element : type a b. (a, b) kind -> int = function
  | F64 -> 8
  | F32 -> 4
  | F16 -> 2
  | I8 -> 1

let any_bytes (Any k) = bytes_per_element k

let bigarray_kind : type a b. (a, b) kind -> (a, b) Bigarray.kind = function
  | F64 -> Bigarray.float64
  | F32 -> Bigarray.float32
  | F16 -> Bigarray.int16_unsigned
  | I8 -> Bigarray.int8_signed

(* The accumulation type paired with each storage: integer storage
   accumulates in (at least) 32-bit integers, float storage in f32. *)
type accum = Acc_f32 | Acc_i32

let accum_of : type a b. (a, b) kind -> accum = function
  | F64 -> Acc_f32
  | F32 -> Acc_f32
  | F16 -> Acc_f32
  | I8 -> Acc_i32

let accum_name = function Acc_f32 -> "f32" | Acc_i32 -> "i32"

(* ------------------------------------------------------------------ *)
(* Quantization parameters                                             *)
(* ------------------------------------------------------------------ *)

(* Symmetric by construction everywhere in this codebase (zero_point is
   kept for generality and asserted 0 by the fast kernels). A buffer's
   qparams are the identity for float storage. *)
type qparams = { scale : float; zero_point : int }

let qid = { scale = 1.0; zero_point = 0 }

let qparams_of_absmax absmax =
  (* 127 levels on each side; guard against an all-zero buffer. *)
  let a = Float.max absmax 1e-8 in
  { scale = a /. 127.0; zero_point = 0 }

let quantize qp v =
  let q = int_of_float (Float.round (v /. qp.scale)) + qp.zero_point in
  if q < -128 then -128 else if q > 127 then 127 else q

let dequantize qp q = qp.scale *. float_of_int (q - qp.zero_point)

(* ------------------------------------------------------------------ *)
(* binary16 encode/decode                                              *)
(* ------------------------------------------------------------------ *)

let f16_decode_bits bits =
  let sign = if bits land 0x8000 <> 0 then -1.0 else 1.0 in
  let e = (bits lsr 10) land 0x1f in
  let m = bits land 0x3ff in
  if e = 0 then sign *. (float_of_int m *. 0x1p-24)
  else if e = 31 then if m = 0 then sign *. infinity else Float.nan
  else sign *. ((1.0 +. (float_of_int m *. 0x1p-10)) *. (2.0 ** float_of_int (e - 15)))

(* 65536-entry decode table, built on first use: f16 loads become one
   int load plus one array read. *)
let f16_table =
  lazy (Array.init 65536 f16_decode_bits)

let f16_decode bits = (Lazy.force f16_table).(bits land 0xffff)

let f16_encode v =
  if Float.is_nan v then 0x7e00
  else begin
    let sign_bit = Int32.to_int (Int32.shift_right_logical (Int32.bits_of_float v) 31) in
    let sign = sign_bit lsl 15 in
    let av = Float.abs v in
    if av = 0.0 then sign
    else if av >= 65520.0 then sign lor 0x7c00 (* overflow -> inf *)
    else begin
      let b = Int32.to_int (Int32.logand (Int32.bits_of_float av) 0x7fffffffl) in
      let e = (b lsr 23) - 127 in
      let m = b land 0x7fffff in
      if e >= -14 then begin
        (* Normal half: round mantissa to 10 bits, round-half-to-even.
           A mantissa carry propagates into the exponent correctly
           (1.999 -> 2.0), and the overflow guard above keeps us short
           of infinity. *)
        let rem = m land 0x1fff in
        let m10 = m lsr 13 in
        let rounded =
          if rem > 0x1000 || (rem = 0x1000 && m10 land 1 = 1) then m10 + 1
          else m10
        in
        sign lor (((e + 15) lsl 10) + rounded)
      end
      else if e >= -25 then begin
        (* Subnormal half: value * 2^24 rounded to an integer. *)
        let shift = -14 - e in
        let rem_bits = 13 + shift in
        let m13 = (0x800000 lor m) lsr rem_bits in
        let rem = (0x800000 lor m) land ((1 lsl rem_bits) - 1) in
        let half = 1 lsl (rem_bits - 1) in
        let rounded =
          if rem > half || (rem = half && m13 land 1 = 1) then m13 + 1 else m13
        in
        sign lor rounded
      end
      else sign (* underflow to zero *)
    end
  end

let f16_of_float = f16_encode
let float_of_f16 = f16_decode

(* ------------------------------------------------------------------ *)
(* Presets                                                             *)
(* ------------------------------------------------------------------ *)

(* The user-facing precision modes: [`F32] is the default everything-
   float pipeline; [`F16] stores activations as binary16 with f32
   accumulation; [`I8] is the post-training-quantized serving preset
   (int8 storage, int32 accumulation, calibrated scales). *)
type preset = [ `F32 | `F16 | `I8 ]

let preset_to_string = function `F32 -> "f32" | `F16 -> "f16" | `I8 -> "int8"

let preset_of_string = function
  | "f32" | "fp32" | "float32" -> Some `F32
  | "f16" | "fp16" | "float16" | "half" -> Some `F16
  | "int8" | "i8" | "q8" -> Some `I8
  | _ -> None

let preset_names = [ "f32"; "f16"; "int8" ]

(* ------------------------------------------------------------------ *)
(* Observed dynamic ranges (calibration input)                         *)
(* ------------------------------------------------------------------ *)

type range = { mutable lo : float; mutable hi : float; mutable seen : int }

let range_empty () = { lo = infinity; hi = neg_infinity; seen = 0 }

let range_update r v =
  if v < r.lo then r.lo <- v;
  if v > r.hi then r.hi <- v;
  r.seen <- r.seen + 1

let range_absmax r =
  if r.seen = 0 then 0.0 else Float.max (Float.abs r.lo) (Float.abs r.hi)

(** Dense tensors backed by [Bigarray].

    The data buffer is a flat, C-layout [Bigarray.Array1]; [shape] gives
    its logical n-dimensional extents in row-major order. Views created
    by {!reshape} and {!sub_left} share storage with their parent.

    The representation is polymorphic in the storage precision
    ({!Precision.kind}): ['a] is the OCaml element type, ['b] the
    Bigarray representation. {!t} pins the default f32 case — the type
    the numeric API below operates on — while {!store} packs a tensor
    of any precision together with its kind and quantization
    parameters. *)

type ('a, 'b) gen = private {
  data : ('a, 'b, Bigarray.c_layout) Bigarray.Array1.t;
  shape : Shape.t;
}

type buffer =
  (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = (float, Bigarray.float32_elt) gen

val create : Shape.t -> t
(** Zero-initialized tensor. *)

val of_buffer : buffer -> Shape.t -> t
(** Wrap an existing buffer; raises [Invalid_argument] if sizes disagree. *)

val scalar : float -> t

val of_array : Shape.t -> float array -> t

val to_array : t -> float array

val shape : t -> Shape.t
val numel : t -> int
val data : t -> buffer

val get : t -> int array -> float
val set : t -> int array -> float -> unit

val get1 : t -> int -> float
(** Flat access with bounds checking. *)

val set1 : t -> int -> float -> unit

val unsafe_get : t -> int -> float
val unsafe_set : t -> int -> float -> unit

val fill : t -> float -> unit
val copy : t -> t
val blit : src:t -> dst:t -> unit

val reshape : t -> Shape.t -> t
(** Shares storage; element count must match. *)

val sub_left : t -> int -> t
(** [sub_left t i] is the [i]-th slice along dimension 0, as a view. *)

val init : Shape.t -> (int array -> float) -> t

val map : (float -> float) -> t -> t
val map_inplace : (float -> float) -> t -> unit
val map2 : (float -> float -> float) -> t -> t -> t

val iteri : (int -> float -> unit) -> t -> unit

val add_inplace : t -> t -> unit
(** [add_inplace dst src] accumulates [src] into [dst] elementwise. *)

val scale_inplace : t -> float -> unit

val axpy : alpha:float -> x:t -> y:t -> unit
(** y := alpha * x + y. *)

val sum : t -> float
val max_value : t -> float
val argmax : t -> int
(** Flat index of the maximum element; first occurrence wins. *)

val dot : t -> t -> float

val l2_norm : t -> float

val approx_equal : ?tol:float -> t -> t -> bool
(** Elementwise comparison with mixed absolute/relative tolerance; shapes
    must be equal. *)

val max_abs_diff : t -> t -> float

val fill_uniform : Rng.t -> t -> lo:float -> hi:float -> unit
val fill_gaussian : Rng.t -> t -> mean:float -> sigma:float -> unit
val fill_xavier : Rng.t -> t -> fan_in:int -> fan_out:int -> unit

val pp : Format.formatter -> t -> unit
(** Prints the shape and first few elements; for debugging and tests. *)

(** {1 Packed stores}

    A [store] is a tensor of {e any} storage precision, packed with its
    kind and quantization parameters. Integer-coded stores decode to
    floats through their {!Precision.qparams} (f16 through the binary16
    tables); f32 stores expose their raw buffer via {!store_f32_data}
    so hot paths can keep the untyped-float fast path. *)

type store =
  | Store : ('a, 'b) Precision.kind * Precision.qparams * ('a, 'b) gen -> store

val store_of_f32 : t -> store
(** Wrap without copying ([F32], identity qparams). *)

val store_create : ?qparams:Precision.qparams -> Precision.any -> Shape.t -> store
(** Fresh store holding encoded zeros. [qparams] defaults to
    {!Precision.qid} and is ignored by float kinds. *)

val store_shape : store -> Shape.t
val store_numel : store -> int
val store_kind : store -> Precision.any
val store_qparams : store -> Precision.qparams
val store_elem_bytes : store -> int
val store_bytes : store -> int

val store_f32_data : store -> buffer option
(** [Some] exactly when the store is f32 — the raw buffer, no copy. *)

val store_f32_opt : store -> t option

val store_data_id : store -> Obj.t
(** Identity of the backing storage block: two stores alias iff their
    ids are physically equal. *)

val store_reader : store -> int -> float
(** Unsafe flat read, decoded to float; partial application specializes
    the decode once per store. *)

val store_writer : store -> int -> float -> unit
(** Unsafe flat write, encoding the float (round-to-nearest, clamped
    for int8). *)

val store_get1 : store -> int -> float
(** Bounds-checked {!store_reader}. *)

val store_set1 : store -> int -> float -> unit

val store_fill : store -> float -> unit
(** Fill with the encoded value. *)

val store_reshape : store -> Shape.t -> store
(** Shares storage; element count must match. *)

val store_to_f32 : store -> t
(** Decoded copy. *)

val store_blit_from_f32 : src:t -> dst:store -> unit
(** Encode [src] elementwise into [dst]; shapes must match. *)

val store_absmax : store -> float
(** Max absolute decoded value (0 for an empty store). *)

(** Counters and latency statistics for a serving run.

    Latencies are simulated seconds (admission to response). Every
    admitted request ends in exactly one of [done_fast], [done_degraded],
    [timeout] (deadline expired before it ran) or [cancelled_midrun]
    (cancelled in flight, also answered [Timeout]); refused requests
    count as [shed] (queue full or memory pressure) or [throttled]
    (per-tenant token bucket empty — fleet serving only). *)

type t

val create : unit -> t

(** {1 Recording} *)

val record_submitted : t -> unit
val record_shed : t -> unit
val record_throttled : t -> unit
val record_timeout : t -> unit
val record_done :
  t -> ?quantized:bool -> degraded:bool -> latency:float -> unit -> unit
(** [quantized] (default false) marks a response computed by a
    reduced-precision (int8/f16) fast path — counted alongside
    fast/degraded, not instead of them. *)

val record_cancelled : t -> unit
(** A request whose run was cancelled in flight (runtime deadline
    exceeded or watchdog) — answered [Timeout], but counted separately
    from the queue-side [timeout] of requests that never ran. *)

val record_watchdog : t -> unit
(** The hang watchdog fired (per firing, not per affected request). *)

val record_mem_shed : t -> unit
(** A request shed specifically because of memory pressure; also
    counted in [shed]. *)

val record_respawn : t -> unit
(** A worker domain was respawned while serving. *)

val record_slack : t -> predicted:float -> actual:float -> unit
(** One fast-path run's cost-model prediction vs its actual (simulated)
    run time, feeding the deadline-slack distribution. *)

val record_batch : t -> unit
val record_fast_failure : t -> unit
val record_retry : t -> unit
val record_degraded_batch : t -> unit

(** {1 Reading} *)

val submitted : t -> int
(** Every request offered, refused or not. *)

val done_fast : t -> int
val done_degraded : t -> int

val done_quantized : t -> int
(** Responses served by a reduced-precision fast path; the report line
    naming it appears only when nonzero. *)

val timeout : t -> int
(** Queue-side timeouts: requests whose deadline expired before they
    ran. In-flight cancellations are {!cancelled_midrun}. *)

val shed : t -> int
val throttled : t -> int

val cancelled_midrun : t -> int
val watchdog_fired : t -> int
val mem_shed : t -> int
val respawns : t -> int
val slack_samples : t -> int

val answered : t -> int
(** [done_fast + done_degraded + timeout + shed + throttled +
    cancelled_midrun]. *)

val batches : t -> int
(** Batches dispatched (fast attempts and degraded runs count once). *)

val fast_failures : t -> int
val retries : t -> int
val degraded_batches : t -> int

val percentile : t -> float -> float
(** [percentile t p] of recorded Done latencies, [p] in [0, 100], with
    linear interpolation between order statistics (rank
    [p/100 * (n-1)]); 0.0 when none recorded. Raises [Invalid_argument]
    for [p] outside [0, 100]. *)

val mean_latency : t -> float

val report : t -> string
(** Multi-line human-readable summary: counts, latency percentiles
    (p50/p95/p99/p99.9). Cancellation/respawn/memory-pressure lines
    appear only when those events occurred, so healthy-run transcripts
    are unchanged. *)

val slack_report : t -> string option
(** One-line deadline-slack distribution (actual/predicted run-time
    ratios: p50/p95/max and overrun count); [None] when no slack samples
    were recorded. Kept separate from {!report} so pinned transcripts do
    not change. *)

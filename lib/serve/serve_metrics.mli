(** Counters and latency statistics for a serving run.

    Latencies are simulated seconds (admission to response). Every
    admitted request ends in exactly one of [done_fast], [done_degraded]
    or [timeout]; refused requests count as [shed] (queue full) or
    [throttled] (per-tenant token bucket empty — fleet serving only). *)

type t

val create : unit -> t

(** {1 Recording} *)

val record_submitted : t -> unit
val record_shed : t -> unit
val record_throttled : t -> unit
val record_timeout : t -> unit
val record_done :
  t -> ?quantized:bool -> degraded:bool -> latency:float -> unit -> unit
(** [quantized] (default false) marks a response computed by a
    reduced-precision (int8/f16) fast path — counted alongside
    fast/degraded, not instead of them. *)

val record_batch : t -> unit
val record_fast_failure : t -> unit
val record_retry : t -> unit
val record_degraded_batch : t -> unit

(** {1 Reading} *)

val submitted : t -> int
(** Every request offered, refused or not. *)

val done_fast : t -> int
val done_degraded : t -> int

val done_quantized : t -> int
(** Responses served by a reduced-precision fast path; the report line
    naming it appears only when nonzero. *)

val timeout : t -> int
val shed : t -> int
val throttled : t -> int
val answered : t -> int
(** [done_fast + done_degraded + timeout + shed + throttled]. *)

val batches : t -> int
(** Batches dispatched (fast attempts and degraded runs count once). *)

val fast_failures : t -> int
val retries : t -> int
val degraded_batches : t -> int

val percentile : t -> float -> float
(** [percentile t p] of recorded Done latencies, [p] in [0, 100], with
    linear interpolation between order statistics (rank
    [p/100 * (n-1)]); 0.0 when none recorded. Raises [Invalid_argument]
    for [p] outside [0, 100]. *)

val mean_latency : t -> float

val report : t -> string
(** Multi-line human-readable summary: counts, latency percentiles
    (p50/p95/p99/p99.9). *)

type t = {
  mutable submitted : int;
  mutable done_fast : int;
  mutable done_degraded : int;
  mutable done_quantized : int;
  mutable timeout : int;
  mutable shed : int;
  mutable throttled : int;
  mutable batches : int;
  mutable fast_failures : int;
  mutable retries : int;
  mutable degraded_batches : int;
  mutable latencies : float list;  (* newest first *)
  mutable n_latencies : int;
  mutable cancelled_midrun : int;
      (* Requests whose run was cancelled in flight (runtime deadline or
         watchdog) — distinct from queue-side [timeout], which never ran. *)
  mutable watchdog_fired : int;
  mutable mem_shed : int;  (* Sheds specifically due to memory pressure. *)
  mutable respawns : int;  (* Worker domains respawned while serving. *)
  mutable slacks : (float * float) list;  (* (predicted, actual) run times *)
  mutable n_slacks : int;
}

let create () =
  { submitted = 0; done_fast = 0; done_degraded = 0; done_quantized = 0;
    timeout = 0; shed = 0; throttled = 0; batches = 0; fast_failures = 0;
    retries = 0; degraded_batches = 0; latencies = []; n_latencies = 0;
    cancelled_midrun = 0; watchdog_fired = 0; mem_shed = 0; respawns = 0;
    slacks = []; n_slacks = 0 }

let record_submitted t = t.submitted <- t.submitted + 1
let record_shed t = t.shed <- t.shed + 1
let record_throttled t = t.throttled <- t.throttled + 1
let record_timeout t = t.timeout <- t.timeout + 1
let record_cancelled t = t.cancelled_midrun <- t.cancelled_midrun + 1
let record_watchdog t = t.watchdog_fired <- t.watchdog_fired + 1
let record_mem_shed t = t.mem_shed <- t.mem_shed + 1
let record_respawn t = t.respawns <- t.respawns + 1

let record_slack t ~predicted ~actual =
  t.slacks <- (predicted, actual) :: t.slacks;
  t.n_slacks <- t.n_slacks + 1

let record_done t ?(quantized = false) ~degraded ~latency () =
  if degraded then t.done_degraded <- t.done_degraded + 1
  else t.done_fast <- t.done_fast + 1;
  if quantized then t.done_quantized <- t.done_quantized + 1;
  t.latencies <- latency :: t.latencies;
  t.n_latencies <- t.n_latencies + 1

let record_batch t = t.batches <- t.batches + 1
let record_fast_failure t = t.fast_failures <- t.fast_failures + 1
let record_retry t = t.retries <- t.retries + 1
let record_degraded_batch t = t.degraded_batches <- t.degraded_batches + 1

let submitted t = t.submitted
let done_fast t = t.done_fast
let done_degraded t = t.done_degraded
let done_quantized t = t.done_quantized
let timeout t = t.timeout
let shed t = t.shed
let throttled t = t.throttled
let cancelled_midrun t = t.cancelled_midrun
let watchdog_fired t = t.watchdog_fired
let mem_shed t = t.mem_shed
let respawns t = t.respawns
let slack_samples t = t.n_slacks

let answered t =
  t.done_fast + t.done_degraded + t.timeout + t.shed + t.throttled
  + t.cancelled_midrun
let batches t = t.batches
let fast_failures t = t.fast_failures
let retries t = t.retries
let degraded_batches t = t.degraded_batches

(* Linear interpolation between the order statistics (the numpy-default
   estimator): rank h = p/100 * (n-1) lands between samples and the
   result blends its two neighbours, so p95 of a 10-sample set is no
   longer just the 10th sample. *)
let percentile t p =
  if p < 0.0 || p > 100.0 then
    invalid_arg (Printf.sprintf "Serve_metrics.percentile: p %g outside [0, 100]" p);
  if t.n_latencies = 0 then 0.0
  else begin
    let a = Array.of_list t.latencies in
    Array.sort compare a;
    let n = Array.length a in
    let h = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (n - 1) (lo + 1) in
    let frac = h -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let mean_latency t =
  if t.n_latencies = 0 then 0.0
  else List.fold_left ( +. ) 0.0 t.latencies /. float_of_int t.n_latencies

let report t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "requests: %d submitted = %d fast + %d degraded + %d timeout + %d shed%s%s"
    t.submitted t.done_fast t.done_degraded t.timeout t.shed
    (if t.throttled > 0 then Printf.sprintf " + %d throttled" t.throttled else "")
    (if t.cancelled_midrun > 0 then
       Printf.sprintf " + %d cancelled-midrun" t.cancelled_midrun
     else "");
  line "batches:  %d dispatched (%d degraded), %d fast failure(s), %d retry(ies)"
    t.batches t.degraded_batches t.fast_failures t.retries;
  (* Robustness lines appear only when the corresponding machinery
     actually triggered, so healthy-run transcripts stay byte-identical
     to what existing tests and CI greps pin. *)
  if t.cancelled_midrun > 0 || t.watchdog_fired > 0 then
    line "cancelled: %d request(s) cancelled mid-run (%d watchdog firing(s))"
      t.cancelled_midrun t.watchdog_fired;
  if t.respawns > 0 then
    line "pool:     %d worker domain respawn(s)" t.respawns;
  if t.mem_shed > 0 then
    line "memory:   %d request(s) shed under memory pressure" t.mem_shed;
  (* Printed only for reduced-precision serving so f32 reports stay
     byte-identical to what existing transcripts pin. *)
  if t.done_quantized > 0 then
    line "precision: %d quantized response(s) + %d f32"
      t.done_quantized
      (t.done_fast + t.done_degraded - t.done_quantized);
  if t.n_latencies > 0 then
    line
      "latency:  mean %.3f ms   p50 %.3f ms   p95 %.3f ms   p99 %.3f ms   \
       p99.9 %.3f ms"
      (mean_latency t *. 1e3)
      (percentile t 50.0 *. 1e3)
      (percentile t 95.0 *. 1e3)
      (percentile t 99.0 *. 1e3)
      (percentile t 99.9 *. 1e3)
  else line "latency:  no completed requests";
  Buffer.contents b

(* Deadline-slack distribution: how actual run time compared to the
   cost model's prediction, per fast-path run. Kept out of [report] (and
   printed separately by serve-sim/fleet-sim) so existing pinned
   transcripts do not change. *)
let slack_report t =
  if t.n_slacks = 0 then None
  else begin
    let ratios =
      Array.of_list
        (List.map
           (fun (predicted, actual) ->
             if predicted > 0.0 then actual /. predicted else 1.0)
           t.slacks)
    in
    Array.sort compare ratios;
    let n = Array.length ratios in
    let at p =
      let h = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor h) in
      let hi = min (n - 1) (lo + 1) in
      let frac = h -. float_of_int lo in
      (ratios.(lo) *. (1.0 -. frac)) +. (ratios.(hi) *. frac)
    in
    let overruns =
      List.fold_left
        (fun acc (predicted, actual) -> if actual > predicted then acc + 1 else acc)
        0 t.slacks
    in
    Some
      (Printf.sprintf
         "slack:    actual/predicted run time over %d run(s): p50 %.2fx   \
          p95 %.2fx   max %.2fx   (%d overrun(s))"
         n (at 50.0) (at 95.0)
         ratios.(n - 1)
         overruns)
  end

type t = {
  mutable submitted : int;
  mutable done_fast : int;
  mutable done_degraded : int;
  mutable done_quantized : int;
  mutable timeout : int;
  mutable shed : int;
  mutable throttled : int;
  mutable batches : int;
  mutable fast_failures : int;
  mutable retries : int;
  mutable degraded_batches : int;
  mutable latencies : float list;  (* newest first *)
  mutable n_latencies : int;
}

let create () =
  { submitted = 0; done_fast = 0; done_degraded = 0; done_quantized = 0;
    timeout = 0; shed = 0; throttled = 0; batches = 0; fast_failures = 0;
    retries = 0; degraded_batches = 0; latencies = []; n_latencies = 0 }

let record_submitted t = t.submitted <- t.submitted + 1
let record_shed t = t.shed <- t.shed + 1
let record_throttled t = t.throttled <- t.throttled + 1
let record_timeout t = t.timeout <- t.timeout + 1

let record_done t ?(quantized = false) ~degraded ~latency () =
  if degraded then t.done_degraded <- t.done_degraded + 1
  else t.done_fast <- t.done_fast + 1;
  if quantized then t.done_quantized <- t.done_quantized + 1;
  t.latencies <- latency :: t.latencies;
  t.n_latencies <- t.n_latencies + 1

let record_batch t = t.batches <- t.batches + 1
let record_fast_failure t = t.fast_failures <- t.fast_failures + 1
let record_retry t = t.retries <- t.retries + 1
let record_degraded_batch t = t.degraded_batches <- t.degraded_batches + 1

let submitted t = t.submitted
let done_fast t = t.done_fast
let done_degraded t = t.done_degraded
let done_quantized t = t.done_quantized
let timeout t = t.timeout
let shed t = t.shed
let throttled t = t.throttled
let answered t = t.done_fast + t.done_degraded + t.timeout + t.shed + t.throttled
let batches t = t.batches
let fast_failures t = t.fast_failures
let retries t = t.retries
let degraded_batches t = t.degraded_batches

(* Linear interpolation between the order statistics (the numpy-default
   estimator): rank h = p/100 * (n-1) lands between samples and the
   result blends its two neighbours, so p95 of a 10-sample set is no
   longer just the 10th sample. *)
let percentile t p =
  if p < 0.0 || p > 100.0 then
    invalid_arg (Printf.sprintf "Serve_metrics.percentile: p %g outside [0, 100]" p);
  if t.n_latencies = 0 then 0.0
  else begin
    let a = Array.of_list t.latencies in
    Array.sort compare a;
    let n = Array.length a in
    let h = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (n - 1) (lo + 1) in
    let frac = h -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let mean_latency t =
  if t.n_latencies = 0 then 0.0
  else List.fold_left ( +. ) 0.0 t.latencies /. float_of_int t.n_latencies

let report t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "requests: %d submitted = %d fast + %d degraded + %d timeout + %d shed%s"
    t.submitted t.done_fast t.done_degraded t.timeout t.shed
    (if t.throttled > 0 then Printf.sprintf " + %d throttled" t.throttled else "");
  line "batches:  %d dispatched (%d degraded), %d fast failure(s), %d retry(ies)"
    t.batches t.degraded_batches t.fast_failures t.retries;
  (* Printed only for reduced-precision serving so f32 reports stay
     byte-identical to what existing transcripts pin. *)
  if t.done_quantized > 0 then
    line "precision: %d quantized response(s) + %d f32"
      t.done_quantized
      (t.done_fast + t.done_degraded - t.done_quantized);
  if t.n_latencies > 0 then
    line
      "latency:  mean %.3f ms   p50 %.3f ms   p95 %.3f ms   p99 %.3f ms   \
       p99.9 %.3f ms"
      (mean_latency t *. 1e3)
      (percentile t 50.0 *. 1e3)
      (percentile t 95.0 *. 1e3)
      (percentile t 99.0 *. 1e3)
      (percentile t 99.9 *. 1e3)
  else line "latency:  no completed requests";
  Buffer.contents b

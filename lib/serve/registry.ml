type model = {
  model_name : string;
  input_buf : string;
  output_buf : string;
  seed : int;
  config : Config.t;
  build : unit -> Net.t;
}

type entry = {
  key : string;
  model : string;
  version : int;
  input_buf : string;
  output_buf : string;
  fast : Executor.t;
  reference : Executor.t;
  quantized : bool;  (* fast path serves from reduced-precision storage *)
  fast_costs : (string * float) list;
  ref_costs : (string * float) list;
  batch : int;
  item_numel : int;
  param_bytes : float;
  compile_wall_seconds : float;
  mutable last_used : int;
  mutable pinned : bool;
}

type stats = {
  compiles : int;
  hits : int;
  evictions : int;
  resident : int;
  capacity : int;
}

exception
  Over_budget of { model : string; projected : int; live : int; budget : int }

type t = {
  capacity : int;
  machine : Machine.cpu;
  opts : Executor.Run_opts.t;
  models : (string, model) Hashtbl.t;
  mutable order : string list;  (* model registration order, for listings *)
  entries : (string, entry) Hashtbl.t;  (* key -> prepared pair *)
  footprints : (string, int) Hashtbl.t;
      (* Model name -> measured bytes of one compiled entry (fast +
         reference pools). Versions share the architecture, so the first
         compile's footprint projects every later admission. *)
  mutable tick : int;
  mutable compiles : int;
  mutable hits : int;
  mutable evictions : int;
  mutable evicted_keys : string list;  (* newest first *)
}

let create ?(capacity = 8) ?(machine = Machine.xeon_e5_2699v3)
    ?(opts = Executor.Run_opts.default) () =
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Registry.create: capacity %d <= 0" capacity);
  (* Every registry carries a cancellation token: the executors it
     compiles share it, which is what lets the fleet cancel a batch
     mid-run. An explicitly provided token is kept. *)
  let opts =
    match opts.Executor.Run_opts.token with
    | Some _ -> opts
    | None -> Executor.Run_opts.with_token (Ir_compile.token ()) opts
  in
  { capacity; machine; opts; models = Hashtbl.create 16; order = [];
    entries = Hashtbl.create 16; footprints = Hashtbl.create 16; tick = 0;
    compiles = 0; hits = 0; evictions = 0; evicted_keys = [] }

let opts t = t.opts

let register t ~name ?(seed = 42) ?(config = Config.default) ~input_buf
    ~output_buf build =
  if Hashtbl.mem t.models name then
    invalid_arg (Printf.sprintf "Registry.register: model %s already registered" name);
  Hashtbl.replace t.models name
    { model_name = name; input_buf; output_buf; seed; config; build };
  t.order <- t.order @ [ name ]

let models t = t.order

let find_model t name =
  match Hashtbl.find_opt t.models name with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Registry: unknown model %s (registered: %s)" name
           (String.concat ", " t.order))

(* The cache key fingerprints everything the prepared executors depend
   on: model identity and version, every Config flag (describe covers
   the optimization set; tile size, bounds checks and domain count are
   appended), the Run_opts the fleet shares, and the version-derived
   parameter seed — the Tensor-Comprehensions-style hash key that makes
   repeat lookups instant. *)
let key t name ~version =
  let m = find_model t name in
  let c = m.config in
  let safety =
    match t.opts.Executor.Run_opts.safety with
    | None -> "auto"
    | Some Ir_compile.Unsafe -> "unsafe"
    | Some Ir_compile.Guard_unproven -> "guard"
    | Some Ir_compile.Checked -> "checked"
  in
  let fingerprint =
    Printf.sprintf "%s|v%d|%s|tile=%d|bounds=%b|dom=%d|safety=%s|seed=%d" name
      version (Config.describe c) c.Config.tile_size c.Config.bounds_checks
      t.opts.Executor.Run_opts.domains safety (m.seed + version)
  in
  Printf.sprintf "%s#v%d@%s" name version
    (String.sub (Digest.to_hex (Digest.string fingerprint)) 0 12)

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let resident t = Hashtbl.length t.entries

let entry_pools e =
  [ (Executor.program e.fast).Program.buffers;
    (Executor.program e.reference).Program.buffers ]

let entry_bytes e =
  List.fold_left (fun acc p -> acc + Buffer_pool.total_bytes p) 0 (entry_pools e)

let release_entry e = List.iter Buffer_pool.release (entry_pools e)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        if e.pinned then acc
        else
          match acc with
          | Some v when v.last_used <= e.last_used -> acc
          | _ -> Some e)
      t.entries None
  in
  match victim with
  | None -> false  (* everything pinned: over-commit rather than fail *)
  | Some e ->
      Hashtbl.remove t.entries e.key;
      release_entry e;
      t.evictions <- t.evictions + 1;
      t.evicted_keys <- e.key :: t.evicted_keys;
      true

let section_costs_of machine (prog : Program.t) =
  let est =
    Cost_model.estimate_sections machine
      ~buf_bytes:(Cost_model.buf_bytes_of prog)
      ~width_of:(Program.width_of prog) prog.Program.forward
  in
  List.map
    (fun (s : Cost_model.section_estimate) -> (s.Cost_model.label, s.Cost_model.seconds))
    est.Cost_model.sections

let sync_params ~from_exec ~to_exec =
  List.iter
    (fun (p : Program.param) ->
      Tensor.blit
        ~src:(Executor.lookup from_exec p.Program.value_buf)
        ~dst:(Executor.lookup to_exec p.Program.value_buf))
    (Executor.program from_exec).Program.params

let compile t m ~version ~key =
  let t0 = Unix.gettimeofday () in
  (* Version k re-initializes parameters under seed + k: a model update
     is the same architecture with new (retrained) weights.

     compile_pair consults the persisted tuning cache when the config
     carries no explicit schedule, so a fleet member that was `latte
     tune`d on this machine serves its tuned schedule automatically.
     The registry key stays schedule-independent on purpose: a tuned
     schedule is bit-identical to the default by construction, so tuned
     and untuned compiles of one (model, version) are interchangeable
     and must not double-occupy the admission budget. *)
  let fast, reference =
    Pipeline.compile_pair ~seed:(m.seed + version) ~opts:t.opts m.config m.build
  in
  sync_params ~from_exec:fast ~to_exec:reference;
  let fast_prog = Executor.program fast in
  let input = Executor.lookup fast m.input_buf in
  ignore (Executor.lookup fast m.output_buf);
  ignore (Executor.lookup reference m.input_buf);
  ignore (Executor.lookup reference m.output_buf);
  let batch = fast_prog.Program.batch_size in
  let param_bytes =
    List.fold_left
      (fun acc (p : Program.param) ->
        acc +. (4.0 *. float_of_int (Tensor.numel (Executor.lookup fast p.Program.value_buf))))
      0.0 fast_prog.Program.params
  in
  (* The int8 preset quantizes each compiled version's fast program:
     calibrate on synthetic uniform-[0,1) batches (the load-generator
     feature distribution), repack, re-prepare. The reference stays
     f32 — it is the rollback/degraded path. *)
  let fast =
    match m.config.Config.precision with
    | `I8 ->
        let rng = Rng.create (m.seed + version + 0x517) in
        let feed _ = Tensor.fill_uniform rng input ~lo:0.0 ~hi:1.0 in
        let n =
          Quantize.quantize ~exec:fast ~feed
            ~keep:[ m.input_buf; m.output_buf ]
            ~preset:`I8 fast_prog
        in
        if n > 0 then Executor.prepare ~opts:t.opts fast_prog else fast
    | `F32 | `F16 -> fast
  in
  let quantized =
    let pool = fast_prog.Program.buffers in
    List.exists
      (fun b -> not (Buffer_pool.is_f32 pool b))
      (Buffer_pool.names pool)
  in
  t.compiles <- t.compiles + 1;
  { key; model = m.model_name; version; input_buf = m.input_buf;
    output_buf = m.output_buf; fast; reference; quantized;
    fast_costs = section_costs_of t.machine fast_prog;
    ref_costs = section_costs_of t.machine (Executor.program reference);
    batch; item_numel = Tensor.numel input / batch; param_bytes;
    compile_wall_seconds = Unix.gettimeofday () -. t0; last_used = 0;
    pinned = false }

let projected_bytes t name =
  ignore (find_model t name);
  Hashtbl.find_opt t.footprints name

(* Evict LRU entries until live bytes fit under the process budget.
   Returns how many entries were evicted; stops when everything left is
   pinned (over-commit, like capacity eviction). *)
let enforce_budget t =
  match Buffer_pool.budget () with
  | None -> 0
  | Some b ->
      let n = ref 0 in
      while Buffer_pool.live_bytes () > b && evict_lru t do incr n done;
      !n

let get t name ~version =
  let k = key t name ~version in
  match Hashtbl.find_opt t.entries k with
  | Some e ->
      t.hits <- t.hits + 1;
      touch t e;
      e
  | None ->
      let m = find_model t name in
      (* Memory-pressure admission: with a process budget set and this
         model's footprint known from an earlier compile, evict LRU
         entries until the projection fits, and refuse (the caller sheds
         the request) rather than over-allocate when it cannot. *)
      (match (Buffer_pool.budget (), Hashtbl.find_opt t.footprints name) with
      | Some b, Some projected ->
          while Buffer_pool.live_bytes () + projected > b && evict_lru t do
            ()
          done;
          let live = Buffer_pool.live_bytes () in
          if live + projected > b then
            raise (Over_budget { model = name; projected; live; budget = b })
      | _ -> ());
      let e = compile t m ~version ~key:k in
      List.iter Buffer_pool.track (entry_pools e);
      let bytes = entry_bytes e in
      if not (Hashtbl.mem t.footprints name) then
        Hashtbl.replace t.footprints name bytes;
      touch t e;
      while resident t >= t.capacity && evict_lru t do () done;
      (* First compile of an architecture under a budget: the projection
         was unknown, so the allocation may only now reveal the
         overshoot. Evict what we can; if this entry alone still does
         not fit, release it and refuse. *)
      (match Buffer_pool.budget () with
      | Some b ->
          ignore (enforce_budget t);
          if Buffer_pool.live_bytes () > b then begin
            release_entry e;
            raise
              (Over_budget
                 { model = name; projected = bytes;
                   live = Buffer_pool.live_bytes (); budget = b })
          end
      | None -> ());
      Hashtbl.replace t.entries k e;
      e

let peek t name ~version = Hashtbl.find_opt t.entries (key t name ~version)

let set_pinned t name ~version pinned =
  match peek t name ~version with
  | Some e -> e.pinned <- pinned
  | None -> ()

let pin t name ~version =
  (* Pin compiles if needed: a pinned version must be resident. *)
  (get t name ~version).pinned <- true

let unpin t name ~version = set_pinned t name ~version false

let stats t =
  { compiles = t.compiles; hits = t.hits; evictions = t.evictions;
    resident = resident t; capacity = t.capacity }

let evicted_keys t = List.rev t.evicted_keys

let stats_to_string (s : stats) =
  Printf.sprintf "%d compile(s), %d hit(s), %d eviction(s), %d/%d resident"
    s.compiles s.hits s.evictions s.resident s.capacity

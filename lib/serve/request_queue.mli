(** Bounded FIFO request queue — the serving runtime's admission point.

    The capacity is the load-shedding high-water mark: {!offer} refuses
    new items once the queue is full, and the server answers those
    requests [Shed] instead of letting latency grow without bound. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val offer : 'a t -> 'a -> bool
(** Enqueue at the tail; [false] (and no mutation) when full. *)

val pop : 'a t -> 'a option
(** Dequeue from the head. *)

val peek : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Head-first snapshot, for inspection. *)

val reject : 'a t -> ('a -> bool) -> 'a list
(** Remove and return (head-first) every queued item satisfying the
    predicate, preserving the order of the rest — how deadline-expired
    requests are cleared from per-tenant queues at batch formation. *)

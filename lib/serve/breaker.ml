type state = [ `Closed | `Open | `Half_open ]

let state_name = function
  | `Closed -> "Closed"
  | `Open -> "Open"
  | `Half_open -> "Half_open"

type transition = {
  at : float;
  from_state : state;
  to_state : state;
  reason : string;
}

type t = {
  threshold : int;
  cooldown : float;
  mutable state : state;
  mutable streak : int;  (* consecutive fast-path failures *)
  mutable opened_at : float;
  mutable transitions : transition list;  (* newest first *)
}

let create ?(threshold = 1) ?(cooldown = 5e-3) () =
  if threshold <= 0 then
    invalid_arg (Printf.sprintf "Breaker.create: threshold %d <= 0" threshold);
  if cooldown < 0.0 then
    invalid_arg (Printf.sprintf "Breaker.create: cooldown %g < 0" cooldown);
  { threshold; cooldown; state = `Closed; streak = 0; opened_at = 0.0;
    transitions = [] }

let state t = t.state
let to_string t = state_name t.state
let threshold t = t.threshold
let consecutive_failures t = t.streak

let transit t ~now to_state reason =
  t.transitions <-
    { at = now; from_state = t.state; to_state; reason } :: t.transitions;
  t.state <- to_state

let allow_fast t ~now =
  match t.state with
  | `Closed | `Half_open -> true
  | `Open ->
      if now -. t.opened_at >= t.cooldown then begin
        transit t ~now `Half_open
          (Printf.sprintf "cooldown %gs elapsed; probing the fast path" t.cooldown);
        true
      end
      else false

let on_success t ~now =
  t.streak <- 0;
  match t.state with
  | `Half_open -> transit t ~now `Closed "probe batch succeeded"
  | `Closed | `Open -> ()

let on_failure t ~now ~reason =
  t.streak <- t.streak + 1;
  match t.state with
  | `Half_open ->
      t.opened_at <- now;
      transit t ~now `Open (Printf.sprintf "probe batch failed (%s)" reason)
  | `Closed when t.streak >= t.threshold ->
      t.opened_at <- now;
      transit t ~now `Open
        (Printf.sprintf "%d consecutive failure(s): %s" t.streak reason)
  | `Closed | `Open -> ()

let transitions t = List.rev t.transitions

let transition_to_string tr =
  Printf.sprintf "t=%.6fs  %s -> %s  (%s)" tr.at (state_name tr.from_state)
    (state_name tr.to_state) tr.reason

(** Multi-tenant model-fleet serving runtime.

    Scales the single-model {!Server} to a fleet: a {!Registry} of
    lazily-compiled, hash-keyed, LRU-evicted executor pairs over many
    models; a {!Router} that multiplexes the shared domain pool across
    tenants with weighted-fair scheduling, per-tenant token-bucket
    admission control, per-tenant bounded queues and per-tenant
    deadlines; and {e rolling model updates} — the new version compiles
    in the background of the simulated timeline, is atomically swapped
    in, and is instantly rolled back to the pinned prior version the
    moment its circuit breaker opens (a NaN/Inf guard firing opens it
    at the default threshold 1). The batch that tripped the breaker is
    re-run on the restored version, so a bad release never costs a
    tenant a request.

    Every admitted request resolves to exactly one of [Done], [Timeout],
    [Shed] (its tenant's queue was full) or [Throttled] (its tenant's
    token bucket was empty) — one tenant's burst can exhaust only its
    own bucket and queue. Time is simulated exactly as in {!Server}:
    each forward advances the shared fleet clock by the {!Cost_model}
    estimate, inflated by [slow-section] faults from the fleet-wide plan
    and the active version's own plan. *)

type status =
  | Queued
  | Batched
  | Done of {
      output : float array;
      degraded : bool;
      latency : float;
      tenant : string;
      model : string;
      version : int;  (** The model version that produced the answer. *)
    }
  | Timeout
  | Shed  (** Refused at admission: the tenant's queue was full. *)
  | Throttled  (** Refused at admission: the tenant's token bucket was empty. *)

val status_name : status -> string

(** Fleet lifecycle events, each stamped with simulated time. *)
type event =
  | Compiled of {
      model : string;
      version : int;
      key : string;  (** The registry cache key it compiled under. *)
      at : float;
      wall_seconds : float;
    }
  | Update_started of {
      model : string;
      version : int;
      at : float;
      ready_at : float;  (** When the background compile finishes and the swap lands. *)
    }
  | Swapped of { model : string; from_version : int; to_version : int; at : float }
  | Rolled_back of {
      model : string;
      from_version : int;
      to_version : int;
      at : float;
      reason : string;
    }
  | Committed of { model : string; version : int; at : float }
      (** The update survived its settle window; the prior version is
          unpinned. *)
  | Breaker_moved of {
      model : string;
      version : int;
      transition : Breaker.transition;
    }
  | Cancelled_batch of {
      model : string;
      at : float;
      requests : int;
      reason : string;  (** Watchdog firing or runtime deadline. *)
    }
      (** A batch was cancelled mid-run: partial work discarded, every
          request answered [Timeout] (counted [cancelled_midrun]). *)
  | Respawned of { model : string; at : float; workers : int; reason : string }
      (** Worker domains were recycled — either dead ones healed at the
          barrier, or a post-watchdog preemptive recycle. *)
  | Mem_pressure of { at : float; bytes : int; evicted : int }
      (** An external allocation spike was charged to the process
          ledger; [evicted] registry entries were dropped to get back
          under the budget. *)

val event_time : event -> float
val event_to_string : event -> string

type t

val create :
  ?failure_threshold:int ->
  ?cooldown:float ->
  ?max_retries:int ->
  ?backoff:float ->
  ?settle_forwards:int ->
  ?watchdog_slack:float ->
  ?faults:Fault.t ->
  registry:Registry.t ->
  tenants:Router.tenant list ->
  unit ->
  t
(** One model state per registered model (all starting at version 0,
    uncompiled), one metrics stream per tenant. [failure_threshold] /
    [cooldown] parameterize every version's breaker; [settle_forwards]
    (default 8) is how many consecutive successful fast forwards a
    freshly-swapped version must serve before its update commits;
    [watchdog_slack] (default 8.0) is the per-section overrun factor
    past which the hang watchdog cancels the batch (raises
    [Invalid_argument] below 1); [faults] is the fleet-wide plan
    ([slow-section] factors, [hang-section] stalls, [poison-out] and
    [kill-domain] against the fleet-global counters). *)

(** {1 Clock} *)

val now : t -> float
val advance : t -> float -> unit
val advance_to : t -> float -> unit

(** {1 Admission} *)

val submit :
  t -> tenant:string -> model:string -> ?deadline:float -> float array -> int
(** Admit a request (compiling the model's active version lazily if this
    is its first touch). [deadline] is relative seconds (default: the
    tenant's configured deadline). The verdict is immediate:
    queued, [Throttled], or [Shed]. A model that cannot be made resident
    under the process memory budget ({!Registry.Over_budget}) sheds the
    request (counted [mem_shed]). Raises [Invalid_argument] for an
    unknown tenant/model or a wrong feature count. *)

(** {1 Rolling updates} *)

val begin_update :
  t -> model:string -> ?faults:Fault.t -> ?compile_seconds:float -> unit -> int
(** Start a rolling update: the next version number is burnt (monotone
    even across rollbacks), compiled now, pinned together with the
    current active version, and atomically swapped in once
    [compile_seconds] (default 0.05 simulated seconds — the modeled
    background compile) have elapsed. [faults] arms a plan private to
    the new version, its [poison-out] indices counting that version's
    own forwards — chaos scenarios use it to make a release go bad.
    Returns the new version number. Raises [Invalid_argument] when an
    update is already in flight or still settling, or when [faults]
    poisons an unknown buffer. *)

val update_in_flight : t -> string -> bool
(** An update is pending, or swapped but not yet committed. *)

(** {1 Scheduling} *)

val pump : t -> bool
(** One scheduling step: charge any due [alloc-spike] faults (evicting
    registry entries back under the budget), land any due swaps, answer
    deadline-expired requests [Timeout], then weighted-fair-select one
    model batch and run it through the breaker-guarded
    fast/rollback/degraded path — cancelling it mid-run on a watchdog
    firing or once every deadline in it has expired. [false] when no
    live request was available. *)

val drain : t -> unit
(** Pump until every queue is empty. *)

(** {1 Observers} *)

val status : t -> int -> status
(** Raises [Invalid_argument] for an unknown id. *)

val unanswered : t -> int
(** Requests still [Queued]/[Batched] — 0 after {!drain}. *)

val metrics : t -> Serve_metrics.t
(** Fleet-level counters and latency percentiles. *)

val tenant_metrics : t -> string -> Serve_metrics.t
(** One tenant's stream. Raises [Invalid_argument] for unknown names. *)

val registry : t -> Registry.t
val router : t -> Router.t
val faults : t -> Fault.t

val forwards : t -> int
(** Fleet-global fast forwards executed (all models, retries included). *)

val watchdog_slack : t -> float
val swaps : t -> int
val rollbacks : t -> int

val events : t -> event list
(** Chronological lifecycle timeline — compiles, update swaps,
    rollbacks, commits, breaker transitions. *)

val active_version : t -> string -> int
val breaker : t -> string -> Breaker.t
(** The breaker of the model's {e active} version. *)

val oldest_wait : t -> float option
val queued : t -> int
val batch_size : t -> string -> int
val item_numel : t -> string -> int
val param_bytes : t -> string -> float
(** Parameter payload of the active version — what a rolling update
    broadcasts per node ({!Cluster_sim.broadcast_seconds}). *)

val report : t -> string
(** Multi-line report: registry stats, per-model active version and
    breaker state, fleet metrics, the per-tenant table (counts, p95,
    p99.9, shed rate), and the event timeline (update/rollback
    timestamps included). *)

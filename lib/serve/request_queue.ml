type 'a t = { capacity : int; q : 'a Queue.t }

let create ~capacity =
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Request_queue.create: capacity %d <= 0" capacity);
  { capacity; q = Queue.create () }

let capacity t = t.capacity
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q

let offer t x =
  if Queue.length t.q >= t.capacity then false
  else begin
    Queue.add x t.q;
    true
  end

let pop t = Queue.take_opt t.q
let peek t = Queue.peek_opt t.q
let to_list t = List.of_seq (Queue.to_seq t.q)

let reject t p =
  let keep, out = List.partition (fun x -> not (p x)) (to_list t) in
  if out <> [] then begin
    Queue.clear t.q;
    List.iter (fun x -> Queue.add x t.q) keep
  end;
  out


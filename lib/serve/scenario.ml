type burst = {
  b_tenant : string;
  from_s : float;
  until_s : float;
  multiplier : float;
}

type stream = {
  s_tenant : string;
  rate : float;
  mix : (string * float) list;
}

type update_plan = {
  u_model : string;
  at : float;
  compile_seconds : float;
  u_faults : Fault.t;
}

type t = {
  name : string;
  descr : string;
  duration : float;
  tenants : Router.tenant list;
  streams : stream list;
  diurnal_amplitude : float;
  diurnal_period : float;
  bursts : burst list;
  updates : update_plan list;
  fleet_faults : Fault.t;
  max_wait : float;
}

type summary = {
  scenario : string;
  requests : int;
  fast : int;
  degraded : int;
  timeouts : int;
  shed : int;
  throttled : int;
  unanswered : int;
  swaps : int;
  rollbacks : int;
  p50 : float;
  p95 : float;
  p999 : float;
  makespan : float;
}

let validate sc =
  if sc.duration <= 0.0 then
    invalid_arg (Printf.sprintf "Scenario %s: duration %g <= 0" sc.name sc.duration);
  if sc.streams = [] then invalid_arg (Printf.sprintf "Scenario %s: no streams" sc.name);
  if sc.diurnal_amplitude < 0.0 || sc.diurnal_amplitude >= 1.0 then
    invalid_arg
      (Printf.sprintf "Scenario %s: diurnal amplitude %g outside [0, 1)" sc.name
         sc.diurnal_amplitude);
  if sc.diurnal_amplitude > 0.0 && sc.diurnal_period <= 0.0 then
    invalid_arg (Printf.sprintf "Scenario %s: diurnal period %g <= 0" sc.name
                   sc.diurnal_period);
  let tenant_names = List.map (fun (c : Router.tenant) -> c.Router.name) sc.tenants in
  List.iter
    (fun st ->
      if not (List.mem st.s_tenant tenant_names) then
        invalid_arg
          (Printf.sprintf "Scenario %s: stream tenant %s not in tenant set" sc.name
             st.s_tenant);
      if st.rate <= 0.0 then
        invalid_arg
          (Printf.sprintf "Scenario %s: stream %s rate %g <= 0" sc.name st.s_tenant
             st.rate);
      if st.mix = [] then
        invalid_arg (Printf.sprintf "Scenario %s: stream %s has no model mix" sc.name
                       st.s_tenant);
      List.iter
        (fun (m, w) ->
          if w <= 0.0 then
            invalid_arg
              (Printf.sprintf "Scenario %s: stream %s model %s weight %g <= 0"
                 sc.name st.s_tenant m w))
        st.mix)
    sc.streams;
  List.iter
    (fun b ->
      if not (List.mem b.b_tenant tenant_names) then
        invalid_arg
          (Printf.sprintf "Scenario %s: burst tenant %s not in tenant set" sc.name
             b.b_tenant);
      if b.multiplier < 1.0 then
        invalid_arg
          (Printf.sprintf "Scenario %s: burst multiplier %g < 1" sc.name b.multiplier);
      if b.until_s <= b.from_s then
        invalid_arg
          (Printf.sprintf "Scenario %s: empty burst window [%g, %g)" sc.name b.from_s
             b.until_s))
    sc.bursts;
  List.iter
    (fun u ->
      if u.at < 0.0 || u.at >= sc.duration then
        invalid_arg
          (Printf.sprintf "Scenario %s: update of %s at %g outside [0, %g)" sc.name
             u.u_model u.at sc.duration);
      if u.compile_seconds <= 0.0 then
        invalid_arg
          (Printf.sprintf "Scenario %s: update compile time %g <= 0" sc.name
             u.compile_seconds))
    sc.updates

(* Instantaneous arrival rate of one tenant stream: the base rate under
   the fleet-wide diurnal sinusoid, multiplied by any burst window the
   tenant is inside. *)
let rate_at sc st ~now =
  let diurnal =
    if sc.diurnal_amplitude = 0.0 then 1.0
    else
      1.0
      +. sc.diurnal_amplitude
         *. Float.sin (2.0 *. Float.pi *. now /. sc.diurnal_period)
  in
  let burst =
    List.fold_left
      (fun acc b ->
        if b.b_tenant = st.s_tenant && now >= b.from_s && now < b.until_s then
          acc *. b.multiplier
        else acc)
      1.0 sc.bursts
  in
  st.rate *. diurnal *. burst

let peak_rate sc st =
  let burst =
    List.fold_left
      (fun acc b -> if b.b_tenant = st.s_tenant then acc *. b.multiplier else acc)
      1.0 sc.bursts
  in
  st.rate *. (1.0 +. sc.diurnal_amplitude) *. burst

type arrival = { a_time : float; a_tenant : string; a_model : string }

let pick_model rng mix =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
  let u = Rng.float rng total in
  let rec go acc = function
    | [] -> fst (List.hd mix)
    | (m, w) :: rest -> if u < acc +. w then m else go (acc +. w) rest
  in
  go 0.0 mix

(* Nonhomogeneous Poisson arrivals by thinning (Lewis–Shedlock): draw a
   homogeneous process at the stream's peak rate, keep each point with
   probability rate(t)/peak. Streams are generated in declaration order
   and merge-sorted by time, so a run is a pure function of the seed. *)
let arrivals_of rng sc st =
  let peak = peak_rate sc st in
  let t = ref 0.0 in
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    t := !t +. (-.Float.log (1.0 -. Rng.float rng 1.0) /. peak);
    if !t >= sc.duration then continue := false
    else if Rng.float rng peak <= rate_at sc st ~now:!t then
      acc :=
        { a_time = !t; a_tenant = st.s_tenant; a_model = pick_model rng st.mix }
        :: !acc
  done;
  List.rev !acc

let generate_arrivals rng sc =
  let per_stream = List.map (arrivals_of rng sc) sc.streams in
  let merged =
    List.stable_sort (fun a b -> compare a.a_time b.a_time) (List.concat per_stream)
  in
  Array.of_list merged

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let run ?rng ?(seed = 7) fleet sc =
  validate sc;
  let rng = match rng with Some r -> r | None -> Rng.create seed in
  let arrivals = generate_arrivals rng sc in
  let n = Array.length arrivals in
  let next = ref 0 in
  let pending =
    ref (List.stable_sort (fun a b -> compare a.at b.at) sc.updates)
  in
  (* Largest batch size among models touched so far: a full batch of any
     hot model dispatches immediately, like Load_gen's full-batch rule. *)
  let full = ref 1 in
  let fire_due () =
    let rec go () =
      match !pending with
      | u :: rest
        when u.at <= Fleet.now fleet
             && not (Fleet.update_in_flight fleet u.u_model) ->
          ignore
            (Fleet.begin_update fleet ~model:u.u_model ~faults:u.u_faults
               ~compile_seconds:u.compile_seconds ());
          pending := rest;
          go ()
      | _ -> ()
    in
    go ()
  in
  let submit_due () =
    while !next < n && arrivals.(!next).a_time <= Fleet.now fleet do
      let a = arrivals.(!next) in
      let numel = Fleet.item_numel fleet a.a_model in
      ignore
        (Fleet.submit fleet ~tenant:a.a_tenant ~model:a.a_model
           (Load_gen.features rng ~numel));
      full := max !full (Fleet.batch_size fleet a.a_model);
      incr next
    done
  in
  let next_event_time () =
    let arrival = if !next < n then Some arrivals.(!next).a_time else None in
    (* A due-but-blocked update (predecessor still settling) must not
       pin the idle-advance target in the past. *)
    let update =
      match !pending with
      | u :: _ when u.at > Fleet.now fleet -> Some u.at
      | _ -> None
    in
    match (arrival, update) with
    | Some a, Some u -> Some (Float.min a u)
    | (Some _ as x), None | None, (Some _ as x) -> x
    | None, None -> None
  in
  let rec loop () =
    fire_due ();
    submit_due ();
    if !next >= n && Fleet.queued fleet = 0 then
      match !pending with
      | [] -> ()
      | u :: _ when Fleet.update_in_flight fleet u.u_model ->
          (* A still-settling update blocks its successor and there is no
             traffic left to settle it — the tail of the plan is moot. *)
          pending := []
      | u :: _ ->
          Fleet.advance_to fleet u.at;
          loop ()
    else begin
      (if Fleet.queued fleet = 0 then
         (* Idle with arrivals (or updates) remaining: jump ahead. *)
         match next_event_time () with
         | Some te -> Fleet.advance_to fleet te
         | None -> ()
       else if Fleet.queued fleet >= !full || !next >= n then
         ignore (Fleet.pump fleet)
       else begin
         let waited = Option.value ~default:0.0 (Fleet.oldest_wait fleet) in
         if waited >= sc.max_wait then ignore (Fleet.pump fleet)
         else begin
           let dispatch_at = Fleet.now fleet +. (sc.max_wait -. waited) in
           match next_event_time () with
           | Some te when te <= dispatch_at -> Fleet.advance_to fleet te
           | _ ->
               Fleet.advance_to fleet dispatch_at;
               ignore (Fleet.pump fleet)
         end
       end);
      loop ()
    end
  in
  loop ();
  Fleet.drain fleet;
  let m = Fleet.metrics fleet in
  {
    scenario = sc.name;
    requests = Serve_metrics.submitted m;
    fast = Serve_metrics.done_fast m;
    degraded = Serve_metrics.done_degraded m;
    timeouts = Serve_metrics.timeout m;
    shed = Serve_metrics.shed m;
    throttled = Serve_metrics.throttled m;
    unanswered = Fleet.unanswered fleet;
    swaps = Fleet.swaps fleet;
    rollbacks = Fleet.rollbacks fleet;
    p50 = Serve_metrics.percentile m 50.0;
    p95 = Serve_metrics.percentile m 95.0;
    p999 = Serve_metrics.percentile m 99.9;
    makespan = Fleet.now fleet;
  }

let summary_to_string s =
  Printf.sprintf
    "scenario %-16s %5d req  %5d fast  %4d degraded  %4d timeout  %4d shed  \
     %4d throttled  %d swap(s)  %d rollback(s)  p50 %.3fms  p95 %.3fms  p99.9 \
     %.3fms  over %.3fms"
    s.scenario s.requests s.fast s.degraded s.timeouts s.shed s.throttled s.swaps
    s.rollbacks (s.p50 *. 1e3) (s.p95 *. 1e3) (s.p999 *. 1e3) (s.makespan *. 1e3)

(* ------------------------------------------------------------------ *)
(* Stock scenarios                                                     *)
(* ------------------------------------------------------------------ *)

let stock_tenants =
  [
    { Router.name = "free"; weight = 1.0; rate = 600.0; burst = 24.0;
      queue_cap = 32; deadline = 0.030 };
    { Router.name = "pro"; weight = 4.0; rate = 1200.0; burst = 48.0;
      queue_cap = 64; deadline = 0.020 };
    { Router.name = "enterprise"; weight = 8.0; rate = 2400.0; burst = 96.0;
      queue_cap = 128; deadline = 0.015 };
  ]

let names =
  [ "steady"; "diurnal"; "hot-skew"; "burst"; "rolling-update";
    "chaos-rollback"; "chaos-hang" ]

let base ~duration ~models name descr =
  let model_names = List.map fst models in
  let even = List.map (fun m -> (m, 1.0)) model_names in
  {
    name;
    descr;
    duration;
    tenants = stock_tenants;
    streams =
      [
        { s_tenant = "free"; rate = 400.0; mix = even };
        { s_tenant = "pro"; rate = 800.0; mix = even };
        { s_tenant = "enterprise"; rate = 1600.0; mix = even };
      ];
    diurnal_amplitude = 0.0;
    diurnal_period = 0.0;
    bursts = [];
    updates = [];
    fleet_faults = Fault.none;
    max_wait = 0.002;
  }

(* [models] pairs each registered model name with its output buffer (the
   chaos scenarios poison the updated model's output). The first model
   is the fleet's hot/updated model. *)
let stock ?(duration = 0.25) ~models name =
  if models = [] then invalid_arg "Scenario.stock: no models";
  if duration <= 0.0 then
    invalid_arg (Printf.sprintf "Scenario.stock: duration %g <= 0" duration);
  let base = base ~duration in
  let hot, hot_out = List.hd models in
  match name with
  | "steady" ->
      base ~models "steady" "flat Poisson arrivals, no updates, no faults"
  | "diurnal" ->
      let sc =
        base ~models "diurnal"
          "sinusoidal arrival rate (80% swing, two cycles), no updates"
      in
      { sc with diurnal_amplitude = 0.8; diurnal_period = sc.duration /. 2.0 }
  | "hot-skew" ->
      let sc =
        base ~models "hot-skew"
          (Printf.sprintf "9:1 traffic skew toward %s, exercising LRU retention"
             hot)
      in
      let skew =
        List.map (fun (m, _) -> (m, if m = hot then 9.0 else 1.0)) models
      in
      { sc with streams = List.map (fun st -> { st with mix = skew }) sc.streams }
  | "burst" ->
      let sc =
        base ~models "burst"
          "free tenant bursts 8x mid-run; the others must be unaffected"
      in
      { sc with
        bursts =
          [ { b_tenant = "free"; from_s = sc.duration *. 0.4;
              until_s = sc.duration *. 0.6; multiplier = 8.0 } ] }
  | "rolling-update" ->
      let sc =
        base ~models "rolling-update"
          (Printf.sprintf "clean rolling update of %s mid-traffic" hot)
      in
      { sc with
        updates =
          [ { u_model = hot; at = sc.duration *. 0.4; compile_seconds = 0.01;
              u_faults = Fault.none } ] }
  | "chaos-rollback" ->
      let sc =
        base ~models "chaos-rollback"
          (Printf.sprintf
             "update of %s goes bad (poisoned output on its 3rd forward) under \
              a fleet-wide slow section; must roll back with zero failed \
              requests"
             hot)
      in
      { sc with
        fleet_faults = Fault.parse "slow-section:ip@1.5";
        updates =
          [ { u_model = hot; at = sc.duration *. 0.3; compile_seconds = 0.01;
              u_faults = Fault.parse (Printf.sprintf "poison-out:%s@2" hot_out) } ] }
  | "chaos-hang" ->
      ignore hot_out;
      let sc =
        base ~models "chaos-hang"
          (Printf.sprintf
             "a section of %s stalls mid-run (the watchdog must cancel the \
              batch and recycle the workers) and a worker domain is killed \
              (the pool must respawn it); every request must still be \
              answered"
             hot)
      in
      (* The 50ms stall dwarfs every section estimate, so the watchdog
         fires at any slack; the kill lands on the shared pool's 25th
         dispatch (inert on single-domain runs, where there is no pool). *)
      { sc with
        fleet_faults = Fault.parse "hang-section:ip@0.05,kill-domain:1@25" }
  | other ->
      invalid_arg
        (Printf.sprintf "Scenario.stock: unknown scenario %s (try: %s)" other
           (String.concat ", " names))

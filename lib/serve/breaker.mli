(** Circuit breaker guarding the optimized (fast) execution path.

    State machine:

    - [`Closed] — the fast path serves traffic; consecutive batch
      failures are counted, and reaching [threshold] opens the breaker.
    - [`Open] — the fast path is not trusted; every batch degrades to
      the reference executor until [cooldown] simulated seconds have
      passed since opening, at which point the next {!allow_fast} query
      half-opens the breaker.
    - [`Half_open] — a single probe batch is let onto the fast path:
      success closes the breaker, failure re-opens it (restarting the
      cooldown).

    Transitions are recorded with their simulated timestamp and reason
    so serving reports can show the full Closed → Open → Half_open →
    Closed history. The state is a polymorphic variant so observers
    (serve-sim / fleet-sim transition logs, the fleet's rollback
    trigger) can match on it without depending on this module's
    constructors. *)

type state = [ `Closed | `Open | `Half_open ]

val state_name : state -> string

type transition = {
  at : float;  (** Simulated time of the transition. *)
  from_state : state;
  to_state : state;
  reason : string;
}

type t

val create : ?threshold:int -> ?cooldown:float -> unit -> t
(** [threshold] (default 1) is the consecutive-failure count that opens
    the breaker; [cooldown] (default 5e-3) the simulated seconds spent
    [`Open] before half-opening. Raises [Invalid_argument] when
    [threshold <= 0] or [cooldown < 0]. *)

val state : t -> state
val to_string : t -> string
(** The current state's name — what serving logs print. *)

val threshold : t -> int
val consecutive_failures : t -> int

val allow_fast : t -> now:float -> bool
(** May the next batch try the fast path? [`Closed] and [`Half_open]
    answer yes. [`Open] answers no until the cooldown has elapsed, in
    which case the breaker transitions to [`Half_open] (recording it)
    and answers yes — the caller's batch is the probe. *)

val on_success : t -> now:float -> unit
(** A fast-path batch succeeded: resets the failure streak; a
    [`Half_open] probe success closes the breaker. *)

val on_failure : t -> now:float -> reason:string -> unit
(** A fast-path batch failed: bumps the streak and opens the breaker
    when the streak reaches the threshold; a [`Half_open] probe failure
    re-opens immediately. *)

val transitions : t -> transition list
(** All transitions so far, in chronological order. *)

val transition_to_string : transition -> string

type status =
  | Queued
  | Batched
  | Done of {
      output : float array;
      degraded : bool;
      latency : float;
      tenant : string;
      model : string;
      version : int;
    }
  | Timeout
  | Shed
  | Throttled

let status_name = function
  | Queued -> "Queued"
  | Batched -> "Batched"
  | Done _ -> "Done"
  | Timeout -> "Timeout"
  | Shed -> "Shed"
  | Throttled -> "Throttled"

type version_state = {
  version : int;
  breaker : Breaker.t;
  faults : Fault.t;
  mutable forwards : int;
  mutable seen_transitions : int;
}

type update = { next : version_state; started_at : float; ready_at : float }

type model_state = {
  m_name : string;
  mutable active : version_state;
  mutable prior : version_state option;  (* pinned, for instant rollback *)
  mutable pending : update option;
  mutable next_version : int;  (* monotone: a rolled-back number is burnt *)
  mutable settle_left : int;
  mutable history : version_state list;  (* newest first, for reports *)
}

type event =
  | Compiled of {
      model : string;
      version : int;
      key : string;
      at : float;
      wall_seconds : float;
    }
  | Update_started of {
      model : string;
      version : int;
      at : float;
      ready_at : float;
    }
  | Swapped of { model : string; from_version : int; to_version : int; at : float }
  | Rolled_back of {
      model : string;
      from_version : int;
      to_version : int;
      at : float;
      reason : string;
    }
  | Committed of { model : string; version : int; at : float }
  | Breaker_moved of {
      model : string;
      version : int;
      transition : Breaker.transition;
    }
  | Cancelled_batch of {
      model : string;
      at : float;
      requests : int;
      reason : string;
    }
  | Respawned of { model : string; at : float; workers : int; reason : string }
  | Mem_pressure of { at : float; bytes : int; evicted : int }

let event_time = function
  | Compiled e -> e.at
  | Update_started e -> e.at
  | Swapped e -> e.at
  | Rolled_back e -> e.at
  | Committed e -> e.at
  | Breaker_moved e -> e.transition.Breaker.at
  | Cancelled_batch e -> e.at
  | Respawned e -> e.at
  | Mem_pressure e -> e.at

let event_to_string = function
  | Compiled { model; version; key; at; wall_seconds } ->
      Printf.sprintf "t=%.6fs  %s: compiled v%d as %s (%.0f ms wall)" at model
        version key (wall_seconds *. 1e3)
  | Update_started { model; version; at; ready_at } ->
      Printf.sprintf
        "t=%.6fs  %s: rolling update to v%d started (swap due t=%.6fs)" at model
        version ready_at
  | Swapped { model; from_version; to_version; at } ->
      Printf.sprintf "t=%.6fs  %s: swapped v%d -> v%d" at model from_version
        to_version
  | Rolled_back { model; from_version; to_version; at; reason } ->
      Printf.sprintf "t=%.6fs  %s: rolled back v%d -> v%d (%s)" at model
        from_version to_version reason
  | Committed { model; version; at } ->
      Printf.sprintf "t=%.6fs  %s: committed v%d" at model version
  | Breaker_moved { model; version; transition } ->
      Printf.sprintf "t=%.6fs  %s: breaker v%d %s -> %s (%s)"
        transition.Breaker.at model version
        (Breaker.state_name transition.Breaker.from_state)
        (Breaker.state_name transition.Breaker.to_state)
        transition.Breaker.reason
  | Cancelled_batch { model; at; requests; reason } ->
      Printf.sprintf "t=%.6fs  %s: cancelled batch of %d request(s) mid-run (%s)"
        at model requests reason
  | Respawned { model; at; workers; reason } ->
      Printf.sprintf "t=%.6fs  %s: respawned %d worker domain(s) (%s)" at model
        workers reason
  | Mem_pressure { at; bytes; evicted } ->
      Printf.sprintf
        "t=%.6fs  memory pressure: %d byte(s) charged, %d entry(ies) evicted"
        at bytes evicted

type t = {
  registry : Registry.t;
  router : Router.t;
  metrics : Serve_metrics.t;
  tenant_metrics : (string, Serve_metrics.t) Hashtbl.t;
  model_states : (string, model_state) Hashtbl.t;
  statuses : (int, status) Hashtbl.t;
  faults : Fault.t;  (* fleet-wide plan; versions carry their own *)
  failure_threshold : int;
  cooldown : float;
  max_retries : int;
  backoff : float;
  settle_forwards : int;
  watchdog_slack : float;
  mutable kills_armed : bool;
      (* Fleet-plan kill-domain faults are armed onto the shared pool
         the first time an executor (and thus the pool) exists. *)
  mutable events : event list;  (* newest first *)
  mutable clock : float;
  mutable forwards : int;
  mutable next_id : int;
  mutable swaps : int;
  mutable rollbacks : int;
}

let token t = (Registry.opts t.registry).Executor.Run_opts.token

let reset_token t =
  match token t with Some tok -> Ir_compile.reset_token tok | None -> ()

let cancel_run t ~reason =
  match token t with Some tok -> Ir_compile.cancel tok ~reason | None -> ()

let fresh_version t ~version ~faults =
  { version;
    breaker = Breaker.create ~threshold:t.failure_threshold ~cooldown:t.cooldown ();
    faults; forwards = 0; seen_transitions = 0 }

let create ?(failure_threshold = 1) ?(cooldown = 5e-3) ?(max_retries = 1)
    ?(backoff = 1e-4) ?(settle_forwards = 8) ?(watchdog_slack = 8.0)
    ?(faults = Fault.none) ~registry ~tenants () =
  if max_retries < 0 then
    invalid_arg (Printf.sprintf "Fleet.create: max_retries %d < 0" max_retries);
  if backoff < 0.0 then
    invalid_arg (Printf.sprintf "Fleet.create: backoff %g < 0" backoff);
  if settle_forwards <= 0 then
    invalid_arg
      (Printf.sprintf "Fleet.create: settle_forwards %d <= 0" settle_forwards);
  if watchdog_slack < 1.0 then
    invalid_arg
      (Printf.sprintf "Fleet.create: watchdog_slack %g < 1" watchdog_slack);
  let router = Router.create tenants in
  let t =
    { registry; router; metrics = Serve_metrics.create ();
      tenant_metrics = Hashtbl.create 8; model_states = Hashtbl.create 8;
      statuses = Hashtbl.create 256; faults; failure_threshold; cooldown;
      max_retries; backoff; settle_forwards; watchdog_slack;
      kills_armed = false; events = []; clock = 0.0;
      forwards = 0; next_id = 0; swaps = 0; rollbacks = 0 }
  in
  List.iter
    (fun name ->
      Hashtbl.replace t.tenant_metrics name (Serve_metrics.create ()))
    (Router.tenant_names router);
  List.iter
    (fun name ->
      let vs = fresh_version t ~version:0 ~faults:Fault.none in
      Hashtbl.replace t.model_states name
        { m_name = name; active = vs; prior = None; pending = None;
          next_version = 1; settle_left = 0; history = [ vs ] })
    (Registry.models registry);
  t

let model_state t name =
  match Hashtbl.find_opt t.model_states name with
  | Some ms -> ms
  | None ->
      invalid_arg
        (Printf.sprintf "Fleet: unknown model %s (registered: %s)" name
           (String.concat ", " (Registry.models t.registry)))

let tenant_metric t name =
  match Hashtbl.find_opt t.tenant_metrics name with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Fleet: unknown tenant %s (tenants: %s)" name
           (String.concat ", " (Router.tenant_names t.router)))

let push_event t e = t.events <- e :: t.events

let arm_kills pool plan =
  List.iter
    (fun (worker, at_dispatch) -> Domain_pool.arm_kill pool ~worker ~at_dispatch)
    (Fault.domain_kills plan)

(* Registry.get with a Compiled event the first time a (model, version)
   is actually built — the observable trace of lazy compilation. *)
let entry t name ~version =
  let missed = Registry.peek t.registry name ~version = None in
  let e = Registry.get t.registry name ~version in
  if missed then
    push_event t
      (Compiled
         { model = name; version; key = e.Registry.key; at = t.clock;
           wall_seconds = e.Registry.compile_wall_seconds });
  (* Every executor in the fleet multiplexes one shared domain pool, so
     the fleet plan's kill-domain faults arm once, as soon as any
     prepared executor gives us a handle on it. *)
  (match Executor.pool e.Registry.fast with
  | Some p when not t.kills_armed ->
      arm_kills p t.faults;
      t.kills_armed <- true
  | _ -> ());
  e

let drain_breaker_events t ms vs =
  let trs = Breaker.transitions vs.breaker in
  let n = List.length trs in
  if n > vs.seen_transitions then begin
    List.iteri
      (fun i tr ->
        if i >= vs.seen_transitions then
          push_event t
            (Breaker_moved { model = ms.m_name; version = vs.version; transition = tr }))
      trs;
    vs.seen_transitions <- n
  end

(* ------------------------------------------------------------------ *)
(* Clock and admission                                                 *)
(* ------------------------------------------------------------------ *)

let now t = t.clock

let advance t dt =
  if dt < 0.0 then invalid_arg (Printf.sprintf "Fleet.advance: dt %g < 0" dt);
  t.clock <- t.clock +. dt

let advance_to t time = if time > t.clock then t.clock <- time

let submit t ~tenant ~model ?deadline features =
  let ms = model_state t model in
  let tm = tenant_metric t tenant in
  let cfg = Router.tenant t.router tenant in
  match entry t model ~version:ms.active.version with
  | exception Registry.Over_budget _ ->
      (* Memory-pressure admission control: the model cannot be made
         resident under the process budget, so the request is refused
         up front rather than queued against an executor that will
         never fit. *)
      let id = t.next_id in
      t.next_id <- id + 1;
      Serve_metrics.record_submitted t.metrics;
      Serve_metrics.record_submitted tm;
      Hashtbl.replace t.statuses id Shed;
      Serve_metrics.record_shed t.metrics;
      Serve_metrics.record_shed tm;
      Serve_metrics.record_mem_shed t.metrics;
      Serve_metrics.record_mem_shed tm;
      id
  | e ->
      if Array.length features <> e.Registry.item_numel then
        invalid_arg
          (Printf.sprintf "Fleet.submit: %d features for %s, expected %d"
             (Array.length features) model e.Registry.item_numel);
      let id = t.next_id in
      t.next_id <- id + 1;
      Serve_metrics.record_submitted t.metrics;
      Serve_metrics.record_submitted tm;
      let deadline =
        t.clock
        +. (match deadline with Some d -> d | None -> cfg.Router.deadline)
      in
      let r =
        { Router.id; tenant; model; features; arrival = t.clock; deadline }
      in
      (match Router.admit t.router ~now:t.clock r with
      | `Admitted -> Hashtbl.replace t.statuses id Queued
      | `Throttled ->
          Hashtbl.replace t.statuses id Throttled;
          Serve_metrics.record_throttled t.metrics;
          Serve_metrics.record_throttled tm
      | `Shed ->
          Hashtbl.replace t.statuses id Shed;
          Serve_metrics.record_shed t.metrics;
          Serve_metrics.record_shed tm);
      id

(* ------------------------------------------------------------------ *)
(* Rolling updates                                                     *)
(* ------------------------------------------------------------------ *)

let begin_update t ~model ?(faults = Fault.none) ?(compile_seconds = 0.05) () =
  let ms = model_state t model in
  if ms.pending <> None then
    invalid_arg (Printf.sprintf "Fleet.begin_update: %s update already in flight" model);
  if ms.prior <> None then
    invalid_arg
      (Printf.sprintf "Fleet.begin_update: %s previous update still settling" model);
  let version = ms.next_version in
  ms.next_version <- version + 1;
  (* The new version compiles now (in the background of the simulated
     timeline: traffic keeps flowing until [ready_at]) and both sides of
     the swap are pinned so LRU churn cannot evict the rollback target. *)
  let e = entry t model ~version in
  List.iter
    (fun buf -> ignore (Executor.lookup e.Registry.fast buf))
    (Fault.poison_output_bufs faults);
  (* The new version's own plan may inject worker-domain deaths (its
     dispatch indices count on the shared pool, like the fleet plan's). *)
  (match Executor.pool e.Registry.fast with
  | Some p -> arm_kills p faults
  | None -> ());
  Registry.pin t.registry model ~version;
  Registry.pin t.registry model ~version:ms.active.version;
  let vs = fresh_version t ~version ~faults in
  ms.pending <- Some { next = vs; started_at = t.clock;
                       ready_at = t.clock +. compile_seconds };
  push_event t
    (Update_started { model; version; at = t.clock;
                      ready_at = t.clock +. compile_seconds });
  version

let swap_due t ms =
  match ms.pending with
  | Some u when u.ready_at <= t.clock ->
      let from_v = ms.active.version in
      ms.prior <- Some ms.active;
      ms.active <- u.next;
      ms.history <- u.next :: ms.history;
      ms.pending <- None;
      ms.settle_left <- t.settle_forwards;
      t.swaps <- t.swaps + 1;
      push_event t
        (Swapped { model = ms.m_name; from_version = from_v;
                   to_version = u.next.version; at = t.clock })
  | _ -> ()

let commit t ms prior_vs =
  Registry.unpin t.registry ms.m_name ~version:prior_vs.version;
  Registry.unpin t.registry ms.m_name ~version:ms.active.version;
  ms.prior <- None;
  push_event t
    (Committed { model = ms.m_name; version = ms.active.version; at = t.clock })

let rollback t ms prior_vs ~reason =
  let failed = ms.active in
  Registry.unpin t.registry ms.m_name ~version:failed.version;
  Registry.unpin t.registry ms.m_name ~version:prior_vs.version;
  ms.active <- prior_vs;
  ms.prior <- None;
  ms.settle_left <- 0;
  t.rollbacks <- t.rollbacks + 1;
  push_event t
    (Rolled_back { model = ms.m_name; from_version = failed.version;
                   to_version = prior_vs.version; at = t.clock; reason })

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)
(* ------------------------------------------------------------------ *)

let simulated_cost t (vs : version_state) costs =
  List.fold_left
    (fun acc (label, s) ->
      acc
      +. s
         *. Fault.section_factor t.faults ~label
         *. Fault.section_factor vs.faults ~label)
    0.0 costs

let fill_inputs (e : Registry.entry) exec reqs =
  let input = Executor.lookup exec e.Registry.input_buf in
  Tensor.fill input 0.0;
  List.iteri
    (fun i (r : Router.request) ->
      let row = Tensor.sub_left input i in
      Array.iteri (fun j v -> Tensor.set1 row j v) r.Router.features)
    reqs

let output_finite (e : Registry.entry) exec ~n_live =
  let out = Executor.lookup exec e.Registry.output_buf in
  let ok = ref true in
  for i = 0 to n_live - 1 do
    let row = Tensor.sub_left out i in
    for j = 0 to Tensor.numel row - 1 do
      if not (Float.is_finite (Tensor.get1 row j)) then ok := false
    done
  done;
  !ok

(* One fast forward of the model's active version, section by section:
   the simulated clock advances per section by the modeled cost inflated
   by both the fleet-wide plan (fleet-global forward index) and the
   version's own plan (per-version index — how a chaos scenario targets
   a freshly-swapped version) and stalled by either plan's armed hangs.
   Cancellation decisions happen at section boundaries — the watchdog
   when a section overran its estimate by more than [watchdog_slack],
   the runtime deadline once every request in the batch is past due.
   Output poisonings apply after a completed forward, then the guard
   runs over the live rows. Injected worker-domain deaths surface as
   [Domain_pool.Worker_died] with the pool already healed; the forward
   re-runs transparently and bit-identically. *)
let try_fast t (vs : version_state) (e : Registry.entry) ~max_deadline ~n_live =
  let fleet_ix = t.forwards in
  t.forwards <- fleet_ix + 1;
  let version_ix = vs.forwards in
  vs.forwards <- version_ix + 1;
  let costs = Array.of_list e.Registry.fast_costs in
  let predicted =
    List.fold_left (fun acc (_, s) -> acc +. s) 0.0 e.Registry.fast_costs
  in
  let t_start = t.clock in
  let watchdog_hit = ref false in
  let on_section i label =
    let base = snd costs.(i) in
    let dt =
      (base
      *. Fault.section_factor t.faults ~label
      *. Fault.section_factor vs.faults ~label)
      +. Fault.hang_seconds t.faults ~forward:fleet_ix ~label
      +. Fault.hang_seconds vs.faults ~forward:version_ix ~label
    in
    t.clock <- t.clock +. dt;
    if dt > base *. t.watchdog_slack then begin
      watchdog_hit := true;
      Serve_metrics.record_watchdog t.metrics;
      cancel_run t
        ~reason:
          (Printf.sprintf "watchdog: section %s ran %.3gms against a %.3gms \
                           estimate (slack %gx)"
             label (dt *. 1e3) (base *. 1e3) t.watchdog_slack)
    end
    else if t.clock > max_deadline then
      cancel_run t ~reason:"every deadline in the batch expired mid-run"
  in
  let record_slack () =
    Serve_metrics.record_slack t.metrics ~predicted
      ~actual:(t.clock -. t_start)
  in
  reset_token t;
  let rec go attempts =
    match Executor.forward_sections ~on_section e.Registry.fast with
    | () ->
        record_slack ();
        List.iter
          (fun buf ->
            (* Store-level fill survives packed targets (f16 encodes NaN
               as a NaN bit pattern; serving input/output stay f32). *)
            Tensor.store_fill
              (Buffer_pool.store
                 (Executor.program e.Registry.fast).Program.buffers buf)
              Float.nan)
          (Fault.poison_outputs_at t.faults ~forward:fleet_ix
          @ Fault.poison_outputs_at vs.faults ~forward:version_ix);
        if output_finite e e.Registry.fast ~n_live then `Ok
        else
          `Error (Printf.sprintf "non-finite output in %s" e.Registry.output_buf)
    | exception Ir_compile.Cancelled reason ->
        record_slack ();
        `Cancelled (reason, !watchdog_hit)
    | exception Domain_pool.Worker_died workers ->
        List.iter
          (fun w ->
            Serve_metrics.record_respawn t.metrics;
            Fault.note_domain_kill t.faults ~worker:w ~at:fleet_ix;
            Fault.note_domain_kill vs.faults ~worker:w ~at:version_ix)
          workers;
        push_event t
          (Respawned
             { model = e.Registry.model; at = t.clock;
               workers = List.length workers;
               reason = "worker domain(s) died mid-forward" });
        if attempts < 4 then begin
          reset_token t;
          go (attempts + 1)
        end
        else begin
          record_slack ();
          `Error "worker domains kept dying"
        end
    | exception Fault.Injected_crash msg ->
        record_slack ();
        `Error msg
  in
  go 0

let respond t ~degraded (vs : version_state) (e : Registry.entry) exec reqs =
  let out = Executor.lookup exec e.Registry.output_buf in
  List.iteri
    (fun i (r : Router.request) ->
      (* A request whose deadline passed while the batch ran gets the
         runtime timeout: the answer exists but is stale by contract. *)
      if t.clock > r.Router.deadline then begin
        Hashtbl.replace t.statuses r.Router.id Timeout;
        Serve_metrics.record_cancelled t.metrics;
        Serve_metrics.record_cancelled (tenant_metric t r.Router.tenant)
      end
      else begin
        let row = Tensor.sub_left out i in
        let output = Array.init (Tensor.numel row) (Tensor.get1 row) in
        let latency = t.clock -. r.Router.arrival in
        Hashtbl.replace t.statuses r.Router.id
          (Done { output; degraded; latency; tenant = r.Router.tenant;
                  model = r.Router.model; version = vs.version });
        let quantized = (not degraded) && e.Registry.quantized in
        Serve_metrics.record_done t.metrics ~quantized ~degraded ~latency ();
        Serve_metrics.record_done (tenant_metric t r.Router.tenant) ~quantized
          ~degraded ~latency ()
      end)
    reqs

let run_reference t (vs : version_state) (e : Registry.entry) reqs =
  Serve_metrics.record_degraded_batch t.metrics;
  (* A previous batch may have left the shared token cancelled; every
     executor in the fleet checks it. *)
  reset_token t;
  fill_inputs e e.Registry.reference reqs;
  Executor.forward e.Registry.reference;
  t.clock <- t.clock +. simulated_cost t vs e.Registry.ref_costs;
  respond t ~degraded:true vs e e.Registry.reference reqs

(* A cancelled batch discards its partial work: the fast program's
   non-parameter buffers are repacked clean, and after a watchdog firing
   the shared pool's workers are preemptively recycled — a real hang
   would have left them wedged. The whole batch is answered [Timeout]. *)
let cancel_batch t (e : Registry.entry) ~watchdog ~reason reqs =
  Executor.scrub e.Registry.fast;
  push_event t
    (Cancelled_batch
       { model = e.Registry.model; at = t.clock;
         requests = List.length reqs; reason });
  if watchdog then begin
    match Executor.pool e.Registry.fast with
    | Some p ->
        let n = Domain_pool.respawn_workers p in
        if n > 0 then begin
          for _ = 1 to n do Serve_metrics.record_respawn t.metrics done;
          push_event t
            (Respawned
               { model = e.Registry.model; at = t.clock; workers = n;
                 reason = "post-watchdog worker recycle" })
        end
    | None -> ()
  end;
  List.iter
    (fun (r : Router.request) ->
      Hashtbl.replace t.statuses r.Router.id Timeout;
      Serve_metrics.record_cancelled t.metrics;
      Serve_metrics.record_cancelled (tenant_metric t r.Router.tenant))
    reqs

(* Run one batch against the model's active version. A fast failure
   inside an update's settle window (prior version still pinned) rolls
   the model back as soon as the new version's breaker opens, and the
   batch is re-run on the restored version — the tenants never see the
   bad release. Outside that window the Server semantics apply: bounded
   retry while the breaker trusts the fast path, then degrade to the
   version's reference executor. *)
let rec run_on_active t ms reqs =
  let vs = ms.active in
  let e = entry t ms.m_name ~version:vs.version in
  let n_live = List.length reqs in
  let max_deadline =
    List.fold_left
      (fun acc (r : Router.request) -> Float.max acc r.Router.deadline)
      Float.neg_infinity reqs
  in
  if not (Breaker.allow_fast vs.breaker ~now:t.clock) then
    run_reference t vs e reqs
  else begin
    drain_breaker_events t ms vs;  (* allow_fast may have half-opened *)
    let probing = Breaker.state vs.breaker = `Half_open in
    fill_inputs e e.Registry.fast reqs;
    let rec attempt k =
      match try_fast t vs e ~max_deadline ~n_live with
      | `Ok ->
          Breaker.on_success vs.breaker ~now:t.clock;
          drain_breaker_events t ms vs;
          (match ms.prior with
          | Some prior_vs ->
              ms.settle_left <- ms.settle_left - 1;
              if ms.settle_left <= 0 then commit t ms prior_vs
          | None -> ());
          respond t ~degraded:false vs e e.Registry.fast reqs
      | `Cancelled (reason, watchdog) ->
          (* Not a correctness failure: the breaker state is untouched
             and there is no retry — the batch is already past due. *)
          cancel_batch t e ~watchdog ~reason reqs
      | `Error reason ->
          Serve_metrics.record_fast_failure t.metrics;
          Breaker.on_failure vs.breaker ~now:t.clock ~reason;
          drain_breaker_events t ms vs;
          (match ms.prior with
          | Some prior_vs when Breaker.state vs.breaker = `Open ->
              (* The freshly-swapped version just lost the fleet's
                 trust: roll back and re-run this batch on the restored
                 executor. *)
              rollback t ms prior_vs ~reason;
              run_on_active t ms reqs
          | _ ->
              if (not probing) && k < t.max_retries
                 && Breaker.state vs.breaker = `Closed
              then begin
                Serve_metrics.record_retry t.metrics;
                t.clock <- t.clock +. (t.backoff *. (2.0 ** float_of_int k));
                attempt (k + 1)
              end
              else run_reference t vs e reqs)
    in
    attempt 0
  end

(* ------------------------------------------------------------------ *)
(* The scheduling step                                                 *)
(* ------------------------------------------------------------------ *)

let expire_due t =
  List.iter
    (fun (r : Router.request) ->
      Hashtbl.replace t.statuses r.Router.id Timeout;
      Serve_metrics.record_timeout t.metrics;
      Serve_metrics.record_timeout (tenant_metric t r.Router.tenant))
    (Router.expire t.router ~now:t.clock)

(* An armed alloc-spike fault lands here: the external allocation is
   charged to the process ledger and the registry immediately evicts
   LRU entries to get back under the budget — observable memory
   pressure, not silent over-commit. *)
let apply_alloc_spikes t =
  let bytes = Fault.alloc_spike_due t.faults in
  if bytes > 0 then begin
    Buffer_pool.charge_external bytes;
    let evicted = Registry.enforce_budget t.registry in
    push_event t (Mem_pressure { at = t.clock; bytes; evicted })
  end

let shed_batch t reqs =
  List.iter
    (fun (r : Router.request) ->
      Hashtbl.replace t.statuses r.Router.id Shed;
      Serve_metrics.record_shed t.metrics;
      Serve_metrics.record_mem_shed t.metrics;
      let tm = tenant_metric t r.Router.tenant in
      Serve_metrics.record_shed tm;
      Serve_metrics.record_mem_shed tm)
    reqs

let pump t =
  apply_alloc_spikes t;
  List.iter
    (fun name -> swap_due t (model_state t name))
    (Registry.models t.registry);
  expire_due t;
  let batch_of model =
    (* Under extreme memory pressure the model may not be admissible at
       all; 1 is a safe batch floor — the batch is shed below. *)
    match entry t model ~version:(model_state t model).active.version with
    | e -> e.Registry.batch
    | exception Registry.Over_budget _ -> 1
  in
  match Router.select t.router ~batch_of with
  | None -> false
  | Some (model, reqs) ->
      List.iter
        (fun (r : Router.request) -> Hashtbl.replace t.statuses r.Router.id Batched)
        reqs;
      Serve_metrics.record_batch t.metrics;
      (try run_on_active t (model_state t model) reqs
       with Registry.Over_budget _ -> shed_batch t reqs);
      true

let drain t =
  while Router.total_queued t.router > 0 do
    ignore (pump t)
  done

(* ------------------------------------------------------------------ *)
(* Observers                                                           *)
(* ------------------------------------------------------------------ *)

let status t id =
  match Hashtbl.find_opt t.statuses id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Fleet.status: unknown request id %d" id)

let unanswered t =
  Hashtbl.fold
    (fun _ s acc -> match s with Queued | Batched -> acc + 1 | _ -> acc)
    t.statuses 0

let metrics t = t.metrics
let tenant_metrics t name = tenant_metric t name
let registry t = t.registry
let router t = t.router
let faults t = t.faults
let forwards t = t.forwards
let watchdog_slack t = t.watchdog_slack
let swaps t = t.swaps
let rollbacks t = t.rollbacks
let events t = List.rev t.events

let active_version t model = (model_state t model).active.version
let breaker t model = (model_state t model).active.breaker
let update_in_flight t model =
  let ms = model_state t model in
  ms.pending <> None || ms.prior <> None

let oldest_wait t = Router.oldest_wait t.router ~now:t.clock
let queued t = Router.total_queued t.router

let batch_size t model =
  (entry t model ~version:(model_state t model).active.version).Registry.batch

let item_numel t model =
  (entry t model ~version:(model_state t model).active.version).Registry.item_numel

let param_bytes t model =
  (entry t model ~version:(model_state t model).active.version).Registry.param_bytes

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let report t =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "fleet: %d model(s), %d tenant(s), registry %s"
    (List.length (Registry.models t.registry))
    (List.length (Router.tenant_names t.router))
    (Registry.stats_to_string (Registry.stats t.registry));
  List.iter
    (fun name ->
      let ms = model_state t name in
      line "model %-12s active v%d  breaker %s%s" name ms.active.version
        (Breaker.to_string ms.active.breaker)
        (match (ms.pending, ms.prior) with
        | Some u, _ -> Printf.sprintf "  (update to v%d in flight)" u.next.version
        | _, Some p -> Printf.sprintf "  (settling over prior v%d)" p.version
        | None, None -> ""))
    (Registry.models t.registry);
  Buffer.add_string b (Serve_metrics.report t.metrics);
  line "per-tenant:";
  line "  %-10s %6s %6s %8s %6s %6s %9s %9s %9s %8s" "tenant" "subm" "fast"
    "degraded" "tmout" "shed" "throttled" "p95ms" "p99.9ms" "shed%";
  List.iter
    (fun name ->
      let m = tenant_metric t name in
      let subm = Serve_metrics.submitted m in
      let refused = Serve_metrics.shed m + Serve_metrics.throttled m in
      line "  %-10s %6d %6d %8d %6d %6d %9d %9.3f %9.3f %8.1f" name subm
        (Serve_metrics.done_fast m)
        (Serve_metrics.done_degraded m)
        (Serve_metrics.timeout m) (Serve_metrics.shed m)
        (Serve_metrics.throttled m)
        (Serve_metrics.percentile m 95.0 *. 1e3)
        (Serve_metrics.percentile m 99.9 *. 1e3)
        (if subm = 0 then 0.0 else 100.0 *. float_of_int refused /. float_of_int subm))
    (Router.tenant_names t.router);
  (match events t with
  | [] -> line "timeline: empty"
  | evs ->
      line "timeline:";
      List.iter (fun e -> line "  %s" (event_to_string e)) evs);
  (match Fault.events t.faults with
  | [] -> ()
  | fes ->
      List.iter (fun (e : Fault.event) -> line "[fault] %s" e.Fault.what) fes);
  List.iter
    (fun name ->
      let ms = model_state t name in
      List.iter
        (fun vs ->
          List.iter
            (fun (e : Fault.event) ->
              line "[fault %s v%d] %s" ms.m_name vs.version e.Fault.what)
            (Fault.events vs.faults))
        (List.rev ms.history))
    (Registry.models t.registry);
  Buffer.contents b


type params = {
  n : int;
  rate : float;
  deadline : float;
  max_wait : float;
  seed : int;
}

let poisson_arrivals rng ~n ~rate ~from =
  if n <= 0 then invalid_arg (Printf.sprintf "Load_gen.poisson_arrivals: n %d <= 0" n);
  if rate <= 0.0 then
    invalid_arg (Printf.sprintf "Load_gen.poisson_arrivals: rate %g <= 0" rate);
  let t = ref from in
  Array.init n (fun _ ->
      (* Exponential inter-arrival: -ln(1-u)/rate. *)
      t := !t +. (-.Float.log (1.0 -. Rng.float rng 1.0) /. rate);
      !t)

let features rng ~numel = Array.init numel (fun _ -> Rng.float rng 1.0)

let run ?rng server p =
  if p.n <= 0 then invalid_arg (Printf.sprintf "Load_gen.run: n %d <= 0" p.n);
  if p.rate <= 0.0 then
    invalid_arg (Printf.sprintf "Load_gen.run: rate %g <= 0" p.rate);
  let rng = match rng with Some r -> r | None -> Rng.create p.seed in
  let arrivals = poisson_arrivals rng ~n:p.n ~rate:p.rate ~from:0.0 in
  let item = Server.item_numel server in
  let next = ref 0 in
  let submit_due () =
    while !next < p.n && arrivals.(!next) <= Server.now server do
      ignore
        (Server.submit server
           ~deadline:(arrivals.(!next) +. p.deadline)
           (features rng ~numel:item));
      incr next
    done
  in
  while !next < p.n || Server.queue_length server > 0 do
    submit_due ();
    let qlen = Server.queue_length server in
    if qlen = 0 then
      (* Idle: jump to the next arrival (there is one, or the loop ends). *)
      Server.advance_to server arrivals.(!next)
    else if qlen >= Server.batch_size server || !next >= p.n then
      ignore (Server.pump server)
    else begin
      (* Short batch: wait for more arrivals, but never past the
         batching window of the head-of-line request. *)
      let waited = Option.value ~default:0.0 (Server.oldest_wait server) in
      if waited >= p.max_wait then ignore (Server.pump server)
      else begin
        let dispatch_at = Server.now server +. (p.max_wait -. waited) in
        if arrivals.(!next) <= dispatch_at then
          Server.advance_to server arrivals.(!next)
        else begin
          Server.advance_to server dispatch_at;
          ignore (Server.pump server)
        end
      end
    end
  done

type status =
  | Queued
  | Batched
  | Done of { output : float array; degraded : bool; latency : float }
  | Timeout
  | Shed

let status_name = function
  | Queued -> "Queued"
  | Batched -> "Batched"
  | Done _ -> "Done"
  | Timeout -> "Timeout"
  | Shed -> "Shed"

type pending = { id : int; features : float array; arrival : float; deadline : float }

type t = {
  fast : Executor.t;
  reference : Executor.t;
  quantized : bool;
      (* The fast path serves from reduced-precision (int8/f16) storage;
         the reference path is always full f32. *)
  input_buf : string;
  output_buf : string;
  item_numel : int;
  batch : int;
  queue : pending Request_queue.t;
  statuses : (int, status) Hashtbl.t;
  breaker : Breaker.t;
  metrics : Serve_metrics.t;
  faults : Fault.t;
  fast_costs : (string * float) list;
  ref_costs : (string * float) list;
  max_retries : int;
  backoff : float;
  watchdog_slack : float;
      (* A section whose simulated run time exceeds its cost-model
         estimate by more than this factor trips the hang watchdog. *)
  token : Ir_compile.token option;
      (* The cancellation cell compiled into both executors. *)
  mutable clock : float;
  mutable forwards : int;
  mutable next_id : int;
}

let section_costs_of machine (prog : Program.t) sections =
  let est =
    Cost_model.estimate_sections machine
      ~buf_bytes:(Cost_model.buf_bytes_of prog)
      ~width_of:(Program.width_of prog) sections
  in
  List.map
    (fun (s : Cost_model.section_estimate) -> (s.Cost_model.label, s.Cost_model.seconds))
    est.Cost_model.sections

(* Degraded answers must match the fast path's parameters exactly even
   if a future pass reorders initialization draws, so the pairing is
   enforced by copying rather than assumed from the shared seed. *)
let sync_params ~from_exec ~to_exec =
  List.iter
    (fun (p : Program.param) ->
      Tensor.blit
        ~src:(Executor.lookup from_exec p.Program.value_buf)
        ~dst:(Executor.lookup to_exec p.Program.value_buf))
    (Executor.program from_exec).Program.params

let create ?(queue_capacity = 64) ?(failure_threshold = 1) ?(cooldown = 5e-3)
    ?(max_retries = 1) ?(backoff = 1e-4) ?(watchdog_slack = 8.0)
    ?(machine = Machine.xeon_e5_2699v3) ?(faults = Fault.none) ?(seed = 42)
    ?opts ~config ~input_buf ~output_buf build =
  if max_retries < 0 then
    invalid_arg (Printf.sprintf "Server.create: max_retries %d < 0" max_retries);
  if backoff < 0.0 then
    invalid_arg (Printf.sprintf "Server.create: backoff %g < 0" backoff);
  if watchdog_slack < 1.0 then
    invalid_arg
      (Printf.sprintf "Server.create: watchdog_slack %g < 1" watchdog_slack);
  (* Both executors compile against one cancellation token, which is
     what lets the pump cancel a batch mid-run. An explicitly provided
     token (shared with a registry, say) is kept. *)
  let opts =
    let base =
      match opts with
      | Some o -> o
      | None ->
          Executor.Run_opts.with_domains config.Config.num_domains
            Executor.Run_opts.default
    in
    match base.Executor.Run_opts.token with
    | Some _ -> base
    | None -> Executor.Run_opts.with_token (Ir_compile.token ()) base
  in
  let fast, reference = Pipeline.compile_pair ~seed ~opts config build in
  let fast_prog = Executor.program fast
  and ref_prog = Executor.program reference in
  sync_params ~from_exec:fast ~to_exec:reference;
  let input = Executor.lookup fast input_buf in
  ignore (Executor.lookup fast output_buf);
  ignore (Executor.lookup reference input_buf);
  ignore (Executor.lookup reference output_buf);
  List.iter
    (fun buf -> ignore (Executor.read_f32 fast buf))
    (Fault.poison_output_bufs faults);
  let batch = fast_prog.Program.batch_size in
  (* The int8 serving preset post-training-quantizes the fast program
     here: calibrate dynamic ranges on synthetic uniform-[0,1) batches
     (the Load_gen feature distribution), repack, re-prepare. The
     reference executor stays full f32 — it is the breaker's degraded
     path and the numeric ground truth. Poisoned buffers are kept f32 so
     NaN injection survives encoding. *)
  let fast =
    match config.Config.precision with
    | `I8 ->
        let rng = Rng.create (seed + 0x517) in
        let feed _ = Tensor.fill_uniform rng input ~lo:0.0 ~hi:1.0 in
        let keep =
          input_buf :: output_buf :: Fault.poison_output_bufs faults
        in
        let n =
          Quantize.quantize ~exec:fast ~feed ~keep ~preset:`I8 fast_prog
        in
        if n > 0 then Executor.prepare ~opts:(Executor.run_opts fast) fast_prog
        else fast
    | `F32 | `F16 -> fast
  in
  let pool = fast_prog.Program.buffers in
  let quantized =
    List.exists (fun b -> not (Buffer_pool.is_f32 pool b)) (Buffer_pool.names pool)
  in
  (* Arm injected worker-domain deaths on the pool the fast executor
     actually runs on; a single-domain run has no pool and the kills are
     inert (the fault plan's one-shot flags simply never fire). *)
  (match Executor.pool fast with
  | Some p ->
      List.iter
        (fun (worker, at_dispatch) ->
          Domain_pool.arm_kill p ~worker ~at_dispatch)
        (Fault.domain_kills faults)
  | None -> ());
  {
    fast;
    reference;
    quantized;
    input_buf;
    output_buf;
    item_numel = Tensor.numel input / batch;
    batch;
    queue = Request_queue.create ~capacity:queue_capacity;
    statuses = Hashtbl.create 256;
    breaker = Breaker.create ~threshold:failure_threshold ~cooldown ();
    metrics = Serve_metrics.create ();
    faults;
    fast_costs = section_costs_of machine fast_prog fast_prog.Program.forward;
    ref_costs = section_costs_of machine ref_prog ref_prog.Program.forward;
    max_retries;
    backoff;
    watchdog_slack;
    token = opts.Executor.Run_opts.token;
    clock = 0.0;
    forwards = 0;
    next_id = 0;
  }

let batch_size t = t.batch
let item_numel t = t.item_numel
let now t = t.clock

let advance t dt =
  if dt < 0.0 then invalid_arg (Printf.sprintf "Server.advance: dt %g < 0" dt);
  t.clock <- t.clock +. dt

let advance_to t time = if time > t.clock then t.clock <- time

let submit t ?(deadline = Float.infinity) features =
  if Array.length features <> t.item_numel then
    invalid_arg
      (Printf.sprintf "Server.submit: %d features, expected %d"
         (Array.length features) t.item_numel);
  let id = t.next_id in
  t.next_id <- id + 1;
  Serve_metrics.record_submitted t.metrics;
  let r = { id; features; arrival = t.clock; deadline } in
  if Request_queue.offer t.queue r then Hashtbl.replace t.statuses id Queued
  else begin
    Hashtbl.replace t.statuses id Shed;
    Serve_metrics.record_shed t.metrics
  end;
  id

let queue_length t = Request_queue.length t.queue

let oldest_wait t =
  Option.map (fun r -> t.clock -. r.arrival) (Request_queue.peek t.queue)

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)
(* ------------------------------------------------------------------ *)

let simulated_cost t costs =
  List.fold_left
    (fun acc (label, s) -> acc +. (s *. Fault.section_factor t.faults ~label))
    0.0 costs

let fill_inputs t exec reqs =
  let input = Executor.lookup exec t.input_buf in
  Tensor.fill input 0.0;
  List.iteri
    (fun i r ->
      let row = Tensor.sub_left input i in
      Array.iteri (fun j v -> Tensor.set1 row j v) r.features)
    reqs

let output_finite t exec ~n_live =
  let out = Executor.lookup exec t.output_buf in
  let ok = ref true in
  for i = 0 to n_live - 1 do
    let row = Tensor.sub_left out i in
    for j = 0 to Tensor.numel row - 1 do
      if not (Float.is_finite (Tensor.get1 row j)) then ok := false
    done
  done;
  !ok

let reset_token t =
  match t.token with Some tok -> Ir_compile.reset_token tok | None -> ()

let cancel_run t ~reason =
  match t.token with Some tok -> Ir_compile.cancel tok ~reason | None -> ()

(* One fast forward, section by section: the simulated clock advances
   per section by the (slow-section-inflated, hang-stalled) modeled
   cost, and cancellation decisions happen at section boundaries — the
   watchdog when a section overran its cost-model estimate by more than
   [watchdog_slack], the runtime deadline once every request in the
   batch is already past due. Injected worker-domain deaths surface
   here as [Domain_pool.Worker_died]; the pool has already respawned
   the workers, so the whole forward re-runs (bit-identical: every
   section recomputes from the same parameters). *)
let try_fast t ~max_deadline ~n_live =
  let fwd_ix = t.forwards in
  t.forwards <- fwd_ix + 1;
  let costs = Array.of_list t.fast_costs in
  let predicted = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 t.fast_costs in
  let t_start = t.clock in
  let watchdog_hit = ref false in
  let on_section i label =
    let base = snd costs.(i) in
    let dt =
      (base *. Fault.section_factor t.faults ~label)
      +. Fault.hang_seconds t.faults ~forward:fwd_ix ~label
    in
    t.clock <- t.clock +. dt;
    if dt > base *. t.watchdog_slack then begin
      watchdog_hit := true;
      Serve_metrics.record_watchdog t.metrics;
      cancel_run t
        ~reason:
          (Printf.sprintf "watchdog: section %s ran %.3gms against a %.3gms \
                           estimate (slack %gx)"
             label (dt *. 1e3) (base *. 1e3) t.watchdog_slack)
    end
    else if t.clock > max_deadline then
      cancel_run t ~reason:"every deadline in the batch expired mid-run"
  in
  let record_slack () =
    Serve_metrics.record_slack t.metrics ~predicted
      ~actual:(t.clock -. t_start)
  in
  reset_token t;
  let rec go attempts =
    match Executor.forward_sections ~on_section t.fast with
    | () ->
        record_slack ();
        List.iter
          (fun buf ->
            (* Store-level fill survives packed targets (f16 encodes NaN
               as a NaN bit pattern); int8 poison bufs are kept f32. *)
            Tensor.store_fill
              (Buffer_pool.store (Executor.program t.fast).Program.buffers buf)
              Float.nan)
          (Fault.poison_outputs_at t.faults ~forward:fwd_ix);
        if output_finite t t.fast ~n_live then `Ok
        else `Error (Printf.sprintf "non-finite output in %s" t.output_buf)
    | exception Ir_compile.Cancelled reason ->
        record_slack ();
        `Cancelled (reason, !watchdog_hit)
    | exception Domain_pool.Worker_died workers ->
        List.iter
          (fun w ->
            Serve_metrics.record_respawn t.metrics;
            Fault.note_domain_kill t.faults ~worker:w ~at:fwd_ix)
          workers;
        if attempts < 4 then begin
          reset_token t;
          go (attempts + 1)
        end
        else begin
          record_slack ();
          `Error "worker domains kept dying"
        end
    | exception Fault.Injected_crash msg ->
        record_slack ();
        `Error msg
  in
  go 0

let respond t ~degraded exec reqs =
  let out = Executor.lookup exec t.output_buf in
  List.iteri
    (fun i r ->
      (* A request whose deadline passed while the batch ran gets the
         runtime timeout: the answer exists but is stale by contract. *)
      if t.clock > r.deadline then begin
        Hashtbl.replace t.statuses r.id Timeout;
        Serve_metrics.record_cancelled t.metrics
      end
      else begin
        let row = Tensor.sub_left out i in
        let output = Array.init (Tensor.numel row) (Tensor.get1 row) in
        let latency = t.clock -. r.arrival in
        Hashtbl.replace t.statuses r.id (Done { output; degraded; latency });
        Serve_metrics.record_done t.metrics
          ~quantized:((not degraded) && t.quantized)
          ~degraded ~latency ()
      end)
    reqs

let run_reference t reqs =
  Serve_metrics.record_degraded_batch t.metrics;
  (* A previous batch may have left the shared token cancelled; the
     reference executor checks it too. *)
  reset_token t;
  fill_inputs t t.reference reqs;
  Executor.forward t.reference;
  t.clock <- t.clock +. simulated_cost t t.ref_costs;
  respond t ~degraded:true t.reference reqs

(* A cancelled batch discards its partial work: every non-parameter
   buffer is repacked clean so the next run starts from zeroed scratch
   state, and (after a watchdog firing) the worker domains are
   preemptively recycled — a real hang would have left them wedged. *)
let cancel_batch t ~watchdog reqs =
  Executor.scrub t.fast;
  if watchdog then begin
    match Executor.pool t.fast with
    | Some p ->
        let n = Domain_pool.respawn_workers p in
        for _ = 1 to n do Serve_metrics.record_respawn t.metrics done
    | None -> ()
  end;
  List.iter
    (fun r ->
      Hashtbl.replace t.statuses r.id Timeout;
      Serve_metrics.record_cancelled t.metrics)
    reqs

let run_batch t reqs =
  let n_live = List.length reqs in
  let max_deadline =
    List.fold_left (fun acc r -> Float.max acc r.deadline) Float.neg_infinity
      reqs
  in
  Serve_metrics.record_batch t.metrics;
  if not (Breaker.allow_fast t.breaker ~now:t.clock) then run_reference t reqs
  else begin
    let probing = Breaker.state t.breaker = `Half_open in
    fill_inputs t t.fast reqs;
    let rec attempt k =
      match try_fast t ~max_deadline ~n_live with
      | `Ok ->
          Breaker.on_success t.breaker ~now:t.clock;
          respond t ~degraded:false t.fast reqs
      | `Cancelled (_reason, watchdog) ->
          (* Not a correctness failure: the breaker state is untouched
             and there is no retry — the batch is already past due. *)
          cancel_batch t ~watchdog reqs
      | `Error reason ->
          Serve_metrics.record_fast_failure t.metrics;
          Breaker.on_failure t.breaker ~now:t.clock ~reason;
          (* Retry only while the breaker still trusts the fast path; a
             half-open probe gets exactly one attempt. *)
          if (not probing) && k < t.max_retries
             && Breaker.state t.breaker = `Closed
          then begin
            Serve_metrics.record_retry t.metrics;
            t.clock <- t.clock +. (t.backoff *. (2.0 ** float_of_int k));
            attempt (k + 1)
          end
          else run_reference t reqs
    in
    attempt 0
  end

let pump t =
  let rec take acc k =
    if k = 0 then List.rev acc
    else
      match Request_queue.pop t.queue with
      | None -> List.rev acc
      | Some r ->
          if r.deadline < t.clock then begin
            Hashtbl.replace t.statuses r.id Timeout;
            Serve_metrics.record_timeout t.metrics;
            take acc k
          end
          else begin
            Hashtbl.replace t.statuses r.id Batched;
            take (r :: acc) (k - 1)
          end
  in
  match take [] t.batch with
  | [] -> false
  | reqs ->
      run_batch t reqs;
      true

let drain t =
  while not (Request_queue.is_empty t.queue) do
    ignore (pump t)
  done

let status t id =
  match Hashtbl.find_opt t.statuses id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Server.status: unknown request id %d" id)

let unanswered t =
  Hashtbl.fold
    (fun _ s acc -> match s with Queued | Batched -> acc + 1 | _ -> acc)
    t.statuses 0

let forwards t = t.forwards
let watchdog_slack t = t.watchdog_slack
let cancellation_token t = t.token
let metrics t = t.metrics
let breaker t = t.breaker
let faults t = t.faults
let fast_executor t = t.fast
let reference_executor t = t.reference
let is_quantized t = t.quantized
let section_costs t = t.fast_costs

type tenant = {
  name : string;
  weight : float;
  rate : float;
  burst : float;
  queue_cap : int;
  deadline : float;
}

type request = {
  id : int;
  tenant : string;
  model : string;
  features : float array;
  arrival : float;
  deadline : float;
}

type tstate = {
  cfg : tenant;
  queue : request Request_queue.t;
  mutable tokens : float;
  mutable refilled_at : float;
  mutable norm : float;  (* normalized service: work units / weight *)
}

type t = { order : string list; by_name : (string, tstate) Hashtbl.t }

let create tenants =
  if tenants = [] then invalid_arg "Router.create: no tenants";
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun cfg ->
      if Hashtbl.mem by_name cfg.name then
        invalid_arg (Printf.sprintf "Router.create: duplicate tenant %s" cfg.name);
      if cfg.weight <= 0.0 then
        invalid_arg
          (Printf.sprintf "Router.create: tenant %s weight %g <= 0" cfg.name
             cfg.weight);
      if cfg.rate <= 0.0 then
        invalid_arg
          (Printf.sprintf "Router.create: tenant %s rate %g <= 0" cfg.name cfg.rate);
      if cfg.burst < 1.0 then
        invalid_arg
          (Printf.sprintf "Router.create: tenant %s burst %g < 1" cfg.name
             cfg.burst);
      Hashtbl.replace by_name cfg.name
        { cfg; queue = Request_queue.create ~capacity:cfg.queue_cap;
          tokens = cfg.burst; refilled_at = 0.0; norm = 0.0 })
    tenants;
  { order = List.map (fun c -> c.name) tenants; by_name }

let tenant_names t = t.order

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | Some ts -> ts
  | None ->
      invalid_arg
        (Printf.sprintf "Router: unknown tenant %s (tenants: %s)" name
           (String.concat ", " t.order))

let tenant t name = (find t name).cfg
let queue_length t name = Request_queue.length (find t name).queue

let total_queued t =
  List.fold_left (fun acc n -> acc + queue_length t n) 0 t.order

let tokens t name = (find t name).tokens

let refill ts ~now =
  if now > ts.refilled_at then begin
    ts.tokens <-
      Float.min ts.cfg.burst (ts.tokens +. ((now -. ts.refilled_at) *. ts.cfg.rate));
    ts.refilled_at <- now
  end

let busy_norms t ~except =
  Hashtbl.fold
    (fun name ts acc ->
      if name <> except && not (Request_queue.is_empty ts.queue) then
        match acc with
        | Some m -> Some (Float.min m ts.norm)
        | None -> Some ts.norm
      else acc)
    t.by_name None

let admit t ~now (r : request) =
  let ts = find t r.tenant in
  refill ts ~now;
  if ts.tokens < 1.0 then `Throttled
  else begin
    ts.tokens <- ts.tokens -. 1.0;
    let was_empty = Request_queue.is_empty ts.queue in
    if Request_queue.offer ts.queue r then begin
      (* A tenant waking from idle joins at the system virtual time so
         accumulated idleness is not bankable credit against the others
         (start-time fair queuing). *)
      if was_empty then
        (match busy_norms t ~except:r.tenant with
        | Some sys -> ts.norm <- Float.max ts.norm sys
        | None -> ());
      `Admitted
    end
    else `Shed
  end

let expire t ~now =
  List.concat_map
    (fun name ->
      Request_queue.reject (find t name).queue (fun r -> r.deadline < now))
    t.order

let oldest_wait t ~now =
  List.fold_left
    (fun acc name ->
      match Request_queue.peek (find t name).queue with
      | Some r ->
          let w = now -. r.arrival in
          Some (match acc with Some m -> Float.max m w | None -> w)
      | None -> acc)
    None t.order

(* Weighted-fair pick: among tenants with queued work, the smallest
   normalized service (ties broken by declaration order) goes first;
   its head request names the batch's model, and remaining slots are
   filled by re-applying the same rule restricted to tenants whose head
   is for that model — per-tenant FIFO order is never violated, so a
   tenant's head for another model blocks its later requests even when
   they would fit. Every dequeued request charges 1/weight. *)
let select t ~batch_of =
  let pick ~for_model =
    List.fold_left
      (fun acc name ->
        let ts = find t name in
        match Request_queue.peek ts.queue with
        | Some r
          when (match for_model with Some m -> r.model = m | None -> true) -> (
            match acc with
            | Some (best, _) when best.norm <= ts.norm -> acc
            | _ -> Some (ts, r))
        | _ -> acc)
      None t.order
  in
  match pick ~for_model:None with
  | None -> None
  | Some (_, head) ->
      let model = head.model in
      let cap = batch_of model in
      let rec fill acc k =
        if k >= cap then List.rev acc
        else
          match pick ~for_model:(Some model) with
          | None -> List.rev acc
          | Some (ts, _) ->
              let r = Option.get (Request_queue.pop ts.queue) in
              ts.norm <- ts.norm +. (1.0 /. ts.cfg.weight);
              fill (r :: acc) (k + 1)
      in
      Some (model, fill [] 0)

let norm t name = (find t name).norm

(** Fleet-level registry of prepared executor pairs.

    Models are registered as descriptions (a build function plus its
    {!Config.t} and seed) and compiled {e lazily}: the first
    {!get} for a (model, version) runs {!Pipeline.compile_pair} and
    prepares both executors under the registry's shared
    {!Executor.Run_opts} — one domain pool multiplexed across every
    model in the fleet. Prepared pairs live in a {e hash-keyed} cache
    (the key fingerprints model, version, every compiler flag, the run
    options and the version-derived parameter seed, after LoopStack's
    per-(model, machine) artifacts and Tensor Comprehensions' tuned-
    kernel cache) and are {e LRU-evicted} once more than [capacity]
    pairs are resident — except entries pinned by the fleet's rolling
    updates, which must stay resident for instant rollback.

    Version [k] of a model compiles with [seed + k]: an update is the
    same architecture carrying new (retrained) parameter values.

    Tuned schedules from {!Tune_cache} flow in transparently:
    {!Pipeline.compile_pair} consults the cache whenever the model's
    config has no explicit schedule, so a previously [latte tune]d
    model serves its measured-best schedule. The registry key does NOT
    include the schedule — tuned output is bit-identical to default
    output, so the two compiles are interchangeable. *)

type entry = {
  key : string;  (** The cache key — [model#vN@<hex12>]. *)
  model : string;
  version : int;
  input_buf : string;
  output_buf : string;
  fast : Executor.t;
  reference : Executor.t;  (** {!Config.unoptimized} degradation target. *)
  quantized : bool;
      (** The fast path serves from reduced-precision (int8/f16)
          storage, per the model config's [precision] preset; the
          reference is always full f32. *)
  fast_costs : (string * float) list;
      (** Modeled simulated seconds per forward section. *)
  ref_costs : (string * float) list;
  batch : int;
  item_numel : int;
  param_bytes : float;
      (** Parameter payload (f32 bytes) — what a rolling update must
          broadcast to every node ({!Cluster_sim.broadcast_seconds}). *)
  compile_wall_seconds : float;  (** Wall time the lazy compile took. *)
  mutable last_used : int;  (** LRU tick; maintained by the registry. *)
  mutable pinned : bool;  (** Exempt from eviction while set. *)
}

type stats = {
  compiles : int;
  hits : int;
  evictions : int;
  resident : int;
  capacity : int;
}

type t

exception
  Over_budget of { model : string; projected : int; live : int; budget : int }
(** Raised by {!get} when admitting the model would exceed the process
    memory budget ([Buffer_pool.set_budget]) even after LRU eviction:
    the fleet sheds the request instead of over-allocating. *)

val create :
  ?capacity:int ->
  ?machine:Machine.cpu ->
  ?opts:Executor.Run_opts.t ->
  unit ->
  t
(** [capacity] (default 8) is the resident-pair high-water mark;
    [machine] (default {!Machine.xeon_e5_2699v3}) prices the simulated
    section costs; [opts] (default {!Executor.Run_opts.default}) is
    shared by every prepared executor. When [opts] carries no
    cancellation token, a fresh one is installed so every compiled
    executor in the fleet can be cancelled mid-run. Raises
    [Invalid_argument] when [capacity <= 0]. *)

val opts : t -> Executor.Run_opts.t

val register :
  t ->
  name:string ->
  ?seed:int ->
  ?config:Config.t ->
  input_buf:string ->
  output_buf:string ->
  (unit -> Net.t) ->
  unit
(** Register a model description without compiling it. [seed] defaults
    to 42, [config] to {!Config.default}. [build] must return a fresh,
    structurally identical net on each call. Raises [Invalid_argument]
    on a duplicate name. *)

val models : t -> string list
(** Registered model names, in registration order. *)

val key : t -> string -> version:int -> string
(** The cache key a (model, version) compiles under. Raises
    [Invalid_argument] for an unregistered model. *)

val get : t -> string -> version:int -> entry
(** The prepared pair for (model, version): a cache hit refreshes the
    LRU tick; a miss compiles (recording the wall time in the entry),
    evicting least-recently-used unpinned entries while more than
    [capacity] would be resident. Raises [Invalid_argument] for an
    unregistered model.

    Under a process memory budget ([Buffer_pool.set_budget]), a miss is
    admission-controlled: the model's projected footprint (measured on
    its first compile; versions share the architecture) is checked
    against [Buffer_pool.live_bytes], LRU entries are evicted to make
    room, and {!Over_budget} is raised when it still cannot fit. The
    compiled pools are tracked in the process ledger and released on
    eviction. *)

val projected_bytes : t -> string -> int option
(** The model's measured per-entry footprint in bytes (fast + reference
    pools at their declared storage widths); [None] before its first
    compile. Raises [Invalid_argument] for an unregistered model. *)

val enforce_budget : t -> int
(** Evict LRU entries until [Buffer_pool.live_bytes] fits the process
    budget (no-op without one); returns the number evicted. Called by
    the fleet after an external allocation spike. *)

val peek : t -> string -> version:int -> entry option
(** Resident lookup without compiling or touching LRU state. *)

val pin : t -> string -> version:int -> unit
(** Make (model, version) resident (compiling if needed) and exempt
    from eviction — the fleet pins the active and prior versions across
    a rolling update. *)

val unpin : t -> string -> version:int -> unit
(** Re-admit the entry to LRU eviction (no-op when not resident). *)

val stats : t -> stats
val stats_to_string : stats -> string

val evicted_keys : t -> string list
(** Keys evicted so far, in eviction order. *)

(** Multi-tenant admission control and weighted-fair scheduling.

    Each tenant owns a token bucket ([rate] tokens per simulated second,
    capacity [burst]) and a bounded FIFO queue of [queue_cap] requests —
    admission refuses with [`Throttled] when the bucket is empty and
    [`Shed] when the queue is full, so one tenant's burst exhausts {e
    its own} bucket and queue and cannot shed another tenant's traffic.

    Dispatch is start-time weighted fair queuing over the tenants'
    normalized service (work served divided by [weight]): the busy
    tenant with the smallest normalized service goes first, its head
    request's model names the batch, and the remaining slots are filled
    by the same rule restricted to heads for that model. A tenant waking
    from idle is advanced to the current system virtual time, so
    idleness is not bankable credit. *)

type tenant = {
  name : string;
  weight : float;  (** Fair-share weight (> 0). *)
  rate : float;  (** Token refill per simulated second (> 0). *)
  burst : float;  (** Token bucket capacity (>= 1). *)
  queue_cap : int;  (** Per-tenant bounded queue high-water mark. *)
  deadline : float;
      (** Default relative deadline (seconds) the fleet applies to this
          tenant's requests. *)
}

type request = {
  id : int;
  tenant : string;
  model : string;
  features : float array;
  arrival : float;
  deadline : float;  (** Absolute, on the simulated clock. *)
}

type t

val create : tenant list -> t
(** Raises [Invalid_argument] on an empty list, duplicate names, or
    non-positive weight/rate, or burst < 1. *)

val tenant_names : t -> string list
val tenant : t -> string -> tenant
(** Raises [Invalid_argument] for an unknown tenant (so does every
    function below taking a tenant name). *)

val admit : t -> now:float -> request -> [ `Admitted | `Throttled | `Shed ]
(** Refill the tenant's bucket to [now], then: no token — [`Throttled];
    queue full — [`Shed]; otherwise the request is queued (consuming one
    token). *)

val expire : t -> now:float -> request list
(** Remove and return every queued request whose deadline has passed —
    called at batch-formation time, like {!Server.pump}. *)

val select : t -> batch_of:(string -> int) -> (string * request list) option
(** Form one batch: weighted-fair pick of the next model and up to
    [batch_of model] requests for it (possibly from several tenants).
    [None] when every queue is empty. Dequeued requests charge
    [1/weight] to their tenant's normalized service. *)

val queue_length : t -> string -> int
val total_queued : t -> int
val tokens : t -> string -> float
(** Current bucket level (as of the last refill). *)

val oldest_wait : t -> now:float -> float option
(** Longest head-of-line wait across tenants, if any request is queued. *)

val norm : t -> string -> float
(** The tenant's normalized service so far (for tests and reports). *)

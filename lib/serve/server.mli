(** Fault-tolerant inference serving runtime.

    Wraps a pair of prepared executors — the optimized (fast) program
    and a {!Config.unoptimized} reference compiled from the same network
    with the same seed ({!Pipeline.compile_pair}) — behind a bounded
    request queue with:

    - {b dynamic batching}: up to [Program.batch_size] queued requests
      are packed per forward, short batches are zero-padded, and
      per-request outputs are sliced back out of the output buffer;
    - {b admission control}: once the queue's high-water mark is hit,
      new requests are answered [Shed] immediately;
    - {b deadlines}: each request carries an absolute deadline on the
      simulated clock; requests already expired when a batch is formed
      are answered [Timeout] without executing;
    - {b bounded retry}: a failed fast batch (injected crash, or NaN/Inf
      found in the output buffer by the post-forward guard) is retried
      up to [max_retries] times with exponential backoff;
    - {b a circuit breaker} ({!Breaker}): after [failure_threshold]
      consecutive fast-path failures the breaker opens and batches are
      served by the reference executor (answers marked [degraded]) until
      a cooldown elapses and a half-open probe restores the fast path;
    - {b mid-run cancellation}: both executors compile against one
      {!Ir_compile.token}, and the fast path runs section by section
      ({!Executor.forward_sections}) with the simulated clock advancing
      per section. A section overrunning its cost-model estimate by more
      than [watchdog_slack] trips the hang watchdog; a batch whose every
      deadline has expired mid-run is cancelled. Either way the partial
      work is discarded ({!Executor.scrub}), the batch is answered
      [Timeout] (counted as [cancelled_midrun]), and after a watchdog
      firing the worker domains are preemptively respawned;
    - {b self-healing workers}: an injected worker-domain death
      ([kill-domain:K@T] fault) surfaces as {!Domain_pool.Worker_died}
      with the pool already healed; the forward re-runs transparently
      and bit-identically.

    Every admitted request resolves to exactly one of [Done], [Timeout]
    or [Shed]; time is simulated (batch cost from the {!Cost_model},
    inflated by armed [Fault.Slow_section] specs and stalled by
    [Fault.Hang_section]), so runs are deterministic and independent of
    wall clock. *)

type status =
  | Queued  (** Admitted, waiting for a batch slot. *)
  | Batched  (** In the batch currently being executed. *)
  | Done of { output : float array; degraded : bool; latency : float }
      (** Answered: the request's slice of the output buffer, whether it
          was produced by the reference (degraded) path, and simulated
          seconds from admission to response. *)
  | Timeout
      (** Deadline expired — before the request ran (queue-side), or
          while it ran (mid-run cancellation / runtime deadline). *)
  | Shed  (** Refused at admission: queue full. *)

val status_name : status -> string

type t

val create :
  ?queue_capacity:int ->
  ?failure_threshold:int ->
  ?cooldown:float ->
  ?max_retries:int ->
  ?backoff:float ->
  ?watchdog_slack:float ->
  ?machine:Machine.cpu ->
  ?faults:Fault.t ->
  ?seed:int ->
  ?opts:Executor.Run_opts.t ->
  config:Config.t ->
  input_buf:string ->
  output_buf:string ->
  (unit -> Net.t) ->
  t
(** Compile the network twice ({!Pipeline.compile_pair}), prepare both
    executors under [opts] (default: [config.num_domains] worker
    domains — the batch path runs parallel loops on the domain pool),
    copy the fast program's parameters into the reference (so degraded
    answers are numerically comparable no matter what), and derive
    per-section simulated costs from [machine] (default
    {!Machine.xeon_e5_2699v3}). Defaults: [queue_capacity 64],
    [failure_threshold 1], [cooldown 5e-3]s, [max_retries 1],
    [backoff 1e-4]s base (doubling per retry), [watchdog_slack 8.0]
    (sections may overrun their estimate up to 8x before the hang
    watchdog fires), [faults Fault.none], [seed 42]. When [opts] carries
    no cancellation token a fresh one is installed; armed
    [kill-domain:K@T] faults are translated to {!Domain_pool.arm_kill}
    on the fast executor's pool. Raises [Invalid_argument] when
    [input_buf]/[output_buf] or a buffer named by an armed [poison-out]
    fault does not exist, or when [watchdog_slack < 1]. *)

val batch_size : t -> int
val item_numel : t -> int
(** Flattened feature element count each request must carry. *)

val now : t -> float
(** Current simulated time, seconds. *)

val advance : t -> float -> unit
(** Advance the simulated clock by a non-negative delta. *)

val advance_to : t -> float -> unit
(** Advance the clock to an absolute time (no-op if in the past). *)

val submit : t -> ?deadline:float -> float array -> int
(** Admit a request with [Array.length = item_numel] features; returns
    its id. [deadline] is absolute simulated time (default: none). When
    the queue is full the request is answered [Shed] immediately (its id
    is still valid for {!status}). *)

val queue_length : t -> int
val oldest_wait : t -> float option
(** How long the head-of-line request has been queued, if any. *)

val pump : t -> bool
(** Form and execute one batch: expired requests are answered [Timeout]
    without running, then up to [batch_size] live requests run through
    the breaker-guarded fast/degraded path. [false] when no live request
    was available (expired ones may still have been answered). *)

val drain : t -> unit
(** Pump until the queue is empty. *)

val status : t -> int -> status
(** Raises [Invalid_argument] for an unknown id. *)

val unanswered : t -> int
(** Requests still [Queued]/[Batched] — 0 after {!drain}. *)

val forwards : t -> int
(** Fast-path forwards executed so far (retries and probes included). *)

val watchdog_slack : t -> float

val cancellation_token : t -> Ir_compile.token option
(** The token both executors poll; [None] only when an explicit [opts]
    without a token was somehow forced (never under {!create}). *)

val metrics : t -> Serve_metrics.t
val breaker : t -> Breaker.t
val faults : t -> Fault.t

val fast_executor : t -> Executor.t
val reference_executor : t -> Executor.t

val is_quantized : t -> bool
(** Whether the fast path serves from reduced-precision (int8/f16)
    storage — [config.precision] other than [`F32]. The reference
    (degraded) path is always full f32. *)

val section_costs : t -> (string * float) list
(** Modeled simulated seconds per fast-path forward section, before
    slow-section inflation. *)

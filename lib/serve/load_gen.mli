(** Open-loop synthetic load generator for {!Server}.

    Arrivals are a seeded Poisson process (exponential inter-arrival
    times at [rate] requests per simulated second) with uniform random
    feature vectors — open-loop, so arrivals keep coming at the armed
    rate no matter how far the server falls behind, which is what makes
    shedding and deadline expiry reachable. The event loop advances the
    server's simulated clock between arrivals and dispatches a batch
    when it is full, when the head-of-line request has waited
    [max_wait], or when no arrivals remain.

    Every random draw comes from one explicit generator — [params.seed]
    by default, or the caller's own via [?rng] — so a run is fully
    reproduced by its seed (the CLI's [--seed]); the multi-tenant
    {!Scenario} suite reuses {!poisson_arrivals}/{!features} with the
    same guarantee. *)

type params = {
  n : int;  (** Total requests to generate. *)
  rate : float;  (** Mean arrivals per simulated second. *)
  deadline : float;  (** Relative per-request deadline, seconds. *)
  max_wait : float;  (** Batching window before dispatching short batches. *)
  seed : int;
}

val poisson_arrivals : Rng.t -> n:int -> rate:float -> from:float -> float array
(** [n] absolute arrival times of a Poisson process at [rate] starting
    at time [from], consuming [n] draws. Raises [Invalid_argument] for
    non-positive [n] or [rate]. *)

val features : Rng.t -> numel:int -> float array
(** One uniform [0, 1) feature vector of [numel] elements. *)

val run : ?rng:Rng.t -> Server.t -> params -> unit
(** Drive the server until every generated request is answered; after
    the run [Server.unanswered] is 0. [rng] (default
    [Rng.create params.seed]) supplies every draw. Raises
    [Invalid_argument] for non-positive [n] or [rate]. *)

(* The first-class schedule: a per-section override of the compiler's
   scalar scheduling knobs. Where Config.t says "tile every anchor to
   ~tile_size rows", a schedule can say "tile group `conv1+relu1' to 8
   rows, leave `ip1' unfused, run 2 domains". Group labels are the same
   "+"-joined ensemble names the fuse pass gives its sections, so a
   schedule is readable against `latte dump-ir' output.

   Schedules are value-semantic and canonically comparable: [describe]
   sorts its parts, [digest]/[equal] derive from it, and the payload
   round-trip through the tuning cache preserves equality. *)

type source = Cache | Explicit

type t = {
  tiles : (string * int) list;
  fuse_off : string list;
  domains : int option;
  precision : Precision.preset option;
  source : source;
}

let empty =
  { tiles = []; fuse_off = []; domains = None; precision = None; source = Explicit }

let is_empty t =
  t.tiles = [] && t.fuse_off = [] && t.domains = None && t.precision = None

let with_tile label rows t =
  { t with tiles = (label, rows) :: List.remove_assoc label t.tiles }

let without_fusion label t =
  if List.mem label t.fuse_off then t
  else { t with fuse_off = t.fuse_off @ [ label ] }

let with_domains n t = { t with domains = Some n }
let with_precision p t = { t with precision = Some p }
let with_source source t = { t with source }

let tile_for t label = List.assoc_opt label t.tiles
let fused t label = not (List.mem label t.fuse_off)
let tile_labels t = List.map fst t.tiles

let source_name t = match t.source with Cache -> "cache" | Explicit -> "explicit"

let describe t =
  let tiles = List.sort (fun (a, _) (b, _) -> compare a b) t.tiles in
  let parts =
    List.map (fun (l, n) -> Printf.sprintf "tile(%s)=%d" l n) tiles
    @ List.map (fun l -> Printf.sprintf "nofuse(%s)" l) (List.sort compare t.fuse_off)
    @ (match t.domains with
      | None -> []
      | Some d -> [ Printf.sprintf "domains=%d" d ])
    @
    match t.precision with
    | None -> []
    | Some p -> [ "precision=" ^ Precision.preset_to_string p ]
  in
  if parts = [] then "default" else String.concat " " parts

let digest t = String.sub (Digest.to_hex (Digest.string (describe t))) 0 8

(* Canonical-form equality; [source] records provenance, not content,
   and is deliberately ignored. *)
let equal a b = String.equal (describe a) (describe b)

let sanitize t =
  let warnings = ref [] in
  let tiles =
    List.filter
      (fun (l, n) ->
        if n < 1 then begin
          warnings :=
            Printf.sprintf
              "schedule: tile target %d for group `%s' is < 1; dropping the \
               entry (the static heuristic applies)"
              n l
            :: !warnings;
          false
        end
        else true)
      t.tiles
  in
  ({ t with tiles }, List.rev !warnings)

(* ------------------------------------------------------------------ *)
(* Tuning-cache payload translation                                    *)
(* ------------------------------------------------------------------ *)

let to_payload t =
  List.map (fun (l, n) -> ("tile." ^ l, string_of_int n)) t.tiles
  @ List.mapi (fun i l -> (Printf.sprintf "nofuse.%d" i, l)) t.fuse_off
  @ (match t.domains with
    | None -> []
    | Some d -> [ ("domains", string_of_int d) ])
  @
  match t.precision with
  | None -> []
  | Some p -> [ ("precision", Precision.preset_to_string p) ]

let of_payload kvs =
  let has_prefix p s =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  let strip p s = String.sub s (String.length p) (String.length s - String.length p) in
  List.fold_left
    (fun acc (k, v) ->
      if has_prefix "tile." k then
        (match int_of_string_opt v with
        | Some n when n >= 1 -> with_tile (strip "tile." k) n acc
        | _ -> acc)
      else if has_prefix "nofuse." k then without_fusion v acc
      else if k = "domains" then
        (match int_of_string_opt v with
        | Some d when d >= 1 -> with_domains d acc
        | _ -> acc)
      else if k = "precision" then
        (match Precision.preset_of_string v with
        | Some p -> with_precision p acc
        | None -> acc)
      else acc (* unknown names: forward-compatible skip *))
    { empty with source = Cache }
    kvs

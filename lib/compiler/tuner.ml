(* `latte tune`: cost-model-pruned, measurement-ranked search over the
   schedule space (per-group tile targets from the divisor lattice,
   fusion groups toggled off, worker-domain counts), persisting the
   winner in the Tune_cache.

   The search is deliberately structured like the paper's §6.1 chunk
   auto-tuner scaled down: enumerate candidates from the structure the
   default compilation exposes (Pass_manager.report.tile_groups is the
   exact lattice), prune with the analytical cost model, and let real
   median-of-k forward runs rank the surviving frontier. Every measured
   candidate is asserted bit-identical to the default schedule before it
   may win — a schedule can only ever change *when* work happens, never
   what is computed. *)

type budget = Small | Medium | Large

let budget_of_string = function
  | "small" -> Some Small
  | "medium" -> Some Medium
  | "large" -> Some Large
  | _ -> None

let budget_name = function Small -> "small" | Medium -> "medium" | Large -> "large"

(* frontier: measured candidates; targets: tile targets tried per group;
   iters: median-of-k forward runs per measurement. *)
let limits = function
  | Small -> (6, 3, 3)
  | Medium -> (12, 5, 3)
  | Large -> (24, 8, 5)

type trial = {
  t_schedule : Schedule.t;
  t_note : string;  (* "tile" | "nofuse" | "combined" | "domains" *)
  t_estimate : float;  (* Cost-model forward seconds. *)
  t_measured : float option;  (* Median measured seconds; None = pruned. *)
}

type result = {
  winner : Schedule.t;
  default_seconds : float;
  tuned_seconds : float;
  trials : trial list;
  from_cache : bool;
  cache_key : string option;
  groups : (string * int * int) list;
      (* (label, anchor extent, default tile rows), deduplicated. *)
}

(* Deterministic input fill (the Bench_common.fill_random discipline,
   seeded from the tuner's seed): every Data ensemble's value buffer
   plus the label buffer. Identical fills across candidate compilations
   are what make the bit-identity assertion meaningful. *)
let fill ~seed net exec =
  let rng = Rng.create (4242 + seed) in
  List.iter
    (fun (e : Ensemble.t) ->
      match e.Ensemble.kind with
      | Ensemble.Data -> (
          (* lookup_opt: a buffer packed to a narrow precision (f16
             plans) stays at its deterministic zero fill. *)
          match Executor.lookup_opt exec (e.Ensemble.name ^ ".value") with
          | Some t -> Tensor.fill_uniform rng t ~lo:0.0 ~hi:1.0
          | None -> ())
      | _ -> ())
    (Net.ensembles net);
  match Executor.lookup_opt exec "label" with
  | Some labels -> Tensor.fill labels 0.0
  | None -> ()

(* Full-state snapshot: the decoded contents of every physical buffer.
   Buffer planning happens in synthesize, before any schedule consult,
   so two compilations of one net under one config have the same
   physical names whatever their schedules. *)
let snapshot exec =
  let pool = (Executor.program exec).Program.buffers in
  Buffer_pool.names pool
  |> List.filter (fun n -> String.equal (Buffer_pool.physical pool n) n)
  |> List.map (fun n -> (n, Tensor.to_array (Buffer_pool.read_f32 pool n)))

let bits_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (na, xs) (nb, ys) ->
         String.equal na nb
         && Array.length xs = Array.length ys
         && (let ok = ref true in
             Array.iteri
               (fun i x ->
                 if Int32.bits_of_float x <> Int32.bits_of_float ys.(i) then
                   ok := false)
               xs;
             !ok))
       a b

(* Evenly spread [k] picks over a list, always keeping the extremes. *)
let spread k xs =
  let n = List.length xs in
  if n <= k then xs
  else
    List.filteri
      (fun i _ ->
        List.exists (fun j -> i = j * (n - 1) / (max 1 (k - 1))) (List.init k Fun.id))
      xs

let divisors n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

let tune ?(budget = Medium) ?(seed = 1) ?max_domains ?(use_cache = true)
    ?cache_dir ?(force = false) ?(machine = Machine.xeon_e5_2699v3_1core)
    ?measure ?(log = fun _ -> ()) ~config ~build () =
  let frontier_cap, target_cap, iters = limits budget in
  let max_domains =
    match max_domains with
    | Some n -> max 1 n
    | None -> Domain.recommended_domain_count ()
  in
  (* Tune from the static baseline: whatever schedule the caller's
     config carried is the thing being replaced. *)
  let config = { config with Config.schedule = None } in
  let compile_sched sched =
    let cfg =
      if Schedule.is_empty sched then config
      else { config with Config.schedule = Some sched }
    in
    Pass_manager.run ~seed cfg (build ())
  in
  let estimate prog =
    (Cost_model.estimate_sections machine
       ~buf_bytes:(Cost_model.buf_bytes_of prog)
       ~width_of:(Program.width_of prog) prog.Program.forward)
      .Cost_model.total_seconds
  in
  let prepare ?(domains = 1) prog =
    Executor.prepare
      ~opts:(Executor.Run_opts.with_domains domains Executor.Run_opts.default)
      prog
  in
  let net0 = build () in
  let measure_exec =
    match measure with
    | Some f -> f
    | None -> fun exec -> Executor.time_forward ~warmup:1 ~iters exec
  in
  let eval ?domains prog =
    let exec = prepare ?domains prog in
    fill ~seed net0 exec;
    Executor.forward exec;
    (snapshot exec, measure_exec exec)
  in
  (* ---- default schedule: search space + reference bits + baseline ---- *)
  let default_prog, default_report = compile_sched Schedule.empty in
  let groups =
    List.fold_left
      (fun acc (label, extent, rows) ->
        if List.exists (fun (l, _, _) -> String.equal l label) acc then acc
        else (label, extent, rows) :: acc)
      []
      default_report.Pass_manager.tile_groups
    |> List.rev
  in
  let cache_dir =
    if not use_cache then None
    else match cache_dir with Some d -> Some d | None -> Tune_cache.dir ()
  in
  let key =
    Option.map
      (fun _ ->
        Tune_cache.key
          ~fingerprint:(Program.fingerprint default_prog)
          ~machine:(Tune_cache.machine_id ())
          ~safety:(if config.Config.bounds_checks then "guard" else "unsafe")
          ~precision:(Precision.preset_to_string config.Config.precision))
      cache_dir
  in
  let cached =
    match (cache_dir, key) with
    | Some dir, Some key when not force -> Tune_cache.lookup ~dir ~key
    | _ -> None
  in
  match cached with
  | Some payload ->
      let ms name =
        match Option.bind (List.assoc_opt name payload) float_of_string_opt with
        | Some v -> v /. 1000.0
        | None -> 0.0
      in
      log
        (Printf.sprintf "cache hit (%s): %s"
           (Option.value ~default:"" key)
           (Schedule.describe (Schedule.of_payload payload)));
      {
        winner = Schedule.of_payload payload;
        default_seconds = ms "default_ms";
        tuned_seconds = ms "tuned_ms";
        trials = [];
        from_cache = true;
        cache_key = key;
        groups;
      }
  | None ->
      let default_bits, default_seconds = eval default_prog in
      log
        (Printf.sprintf
           "default schedule: %.3f ms/forward (%d tile groups, budget %s)"
           (default_seconds *. 1000.0) (List.length groups) (budget_name budget));
      (* ---- candidate enumeration ---- *)
      let tile_candidates =
        List.concat_map
          (fun (label, extent, default_rows) ->
            divisors extent
            |> List.filter (fun d -> d <> default_rows)
            |> spread target_cap
            |> List.map (fun target ->
                   ("tile", Schedule.with_tile label target Schedule.empty)))
          groups
      in
      let fuse_candidates =
        if not config.Config.fusion then []
        else
          List.filter_map
            (fun (label, _, _) ->
              if String.contains label '+' then
                Some ("nofuse", Schedule.without_fusion label Schedule.empty)
              else None)
            groups
      in
      let candidates = tile_candidates @ fuse_candidates in
      (* ---- cost-model pruning ---- *)
      let estimated =
        List.map
          (fun (note, sched) ->
            let prog, _ = compile_sched sched in
            (note, sched, prog, estimate prog))
          candidates
      in
      let frontier =
        List.stable_sort (fun (_, _, _, a) (_, _, _, b) -> compare a b) estimated
        |> spread frontier_cap
      in
      log
        (Printf.sprintf "search space: %d candidates, measuring %d after pruning"
           (List.length candidates) (List.length frontier));
      (* ---- measurement ---- *)
      let measure_one (note, sched, prog, est) =
        let bits, secs = eval prog in
        if not (bits_equal default_bits bits) then begin
          log
            (Printf.sprintf "  %-40s REJECTED: outputs differ from default"
               (Schedule.describe sched));
          { t_schedule = sched; t_note = note; t_estimate = est; t_measured = None }
        end
        else begin
          log
            (Printf.sprintf "  %-40s %.3f ms (est %.3f ms)"
               (Schedule.describe sched) (secs *. 1000.0) (est *. 1000.0));
          {
            t_schedule = sched;
            t_note = note;
            t_estimate = est;
            t_measured = Some secs;
          }
        end
      in
      let measured = List.map measure_one frontier in
      let pruned =
        List.filter_map
          (fun (note, sched, _, est) ->
            if
              List.exists
                (fun t -> Schedule.equal t.t_schedule sched)
                measured
            then None
            else
              Some
                {
                  t_schedule = sched;
                  t_note = note;
                  t_estimate = est;
                  t_measured = None;
                })
          estimated
      in
      (* ---- combined greedy: best measured-improving choice per group ---- *)
      let improving =
        List.filter
          (fun t ->
            match t.t_measured with
            | Some s -> s < default_seconds
            | None -> false)
          measured
      in
      let combined =
        List.fold_left
          (fun acc t ->
            match (t.t_note, t.t_schedule.Schedule.tiles, t.t_schedule.Schedule.fuse_off) with
            | "tile", [ (label, rows) ], _
              when Schedule.tile_for acc label = None
                   && not (List.mem label acc.Schedule.fuse_off) ->
                (* Singles are sorted best-first below, so the first
                   tile entry per label is the best one. *)
                Schedule.with_tile label rows acc
            | "nofuse", _, [ label ] when Schedule.tile_for acc label = None ->
                (* A tile target for the fused group and unfusing that
                   same group are mutually exclusive; best-first order
                   means whichever measured faster claims the label. *)
                Schedule.without_fusion label acc
            | _ -> acc)
          Schedule.empty
          (List.stable_sort
             (fun a b -> compare a.t_measured b.t_measured)
             improving)
      in
      let combined_trial =
        if
          Schedule.is_empty combined
          || List.exists (fun t -> Schedule.equal t.t_schedule combined) measured
        then []
        else begin
          let prog, _ = compile_sched combined in
          [ measure_one ("combined", combined, prog, estimate prog) ]
        end
      in
      let all_measured = measured @ combined_trial in
      (* ---- pick the single-domain winner (must beat default by >1%) ---- *)
      let best =
        List.fold_left
          (fun best t ->
            match (t.t_measured, best) with
            | Some s, Some (_, bs) when s < bs -> Some (t.t_schedule, s)
            | Some s, None -> Some (t.t_schedule, s)
            | _ -> best)
          None all_measured
      in
      let winner, tuned_seconds =
        match best with
        | Some (sched, s) when s < default_seconds *. 0.99 -> (sched, s)
        | _ -> (Schedule.empty, default_seconds)
      in
      (* ---- domain-count stage ---- *)
      let domain_candidates =
        let rec powers d = if d > max_domains then [] else d :: powers (2 * d) in
        powers 2 @ (if max_domains > 1 && not (List.mem max_domains (powers 2)) then [ max_domains ] else [])
      in
      let winner_prog =
        if Schedule.is_empty winner then default_prog
        else fst (compile_sched winner)
      in
      let domain_trials =
        List.map
          (fun d ->
            let sched = Schedule.with_domains d winner in
            let bits, secs = eval ~domains:d winner_prog in
            log
              (Printf.sprintf "  %-40s %.3f ms" (Schedule.describe sched)
                 (secs *. 1000.0));
            let ok = bits_equal default_bits bits in
            if not ok then
              log
                (Printf.sprintf "  %-40s REJECTED: outputs differ from default"
                   (Schedule.describe sched));
            {
              t_schedule = sched;
              t_note = "domains";
              t_estimate = 0.0;
              t_measured = (if ok then Some secs else None);
            })
          domain_candidates
      in
      let winner, tuned_seconds =
        List.fold_left
          (fun (w, ws) t ->
            match t.t_measured with
            | Some s when s < ws *. 0.99 -> (t.t_schedule, s)
            | _ -> (w, ws))
          (winner, tuned_seconds) domain_trials
      in
      log
        (Printf.sprintf "winner: %s (%.3f ms vs %.3f ms default)"
           (Schedule.describe winner) (tuned_seconds *. 1000.0)
           (default_seconds *. 1000.0));
      (* ---- persist ---- *)
      (match (cache_dir, key) with
      | Some dir, Some key ->
          let payload =
            Schedule.to_payload winner
            @ [
                ("default_ms", Printf.sprintf "%.6f" (default_seconds *. 1000.0));
                ("tuned_ms", Printf.sprintf "%.6f" (tuned_seconds *. 1000.0));
              ]
          in
          Tune_cache.store ~dir ~key payload;
          log (Printf.sprintf "stored tuning-cache entry %s" key)
      | _ -> ());
      {
        winner;
        default_seconds;
        tuned_seconds;
        trials = all_measured @ domain_trials @ pruned;
        from_cache = false;
        cache_key = key;
        groups;
      }

(** The typed state threaded through the compiler's pass pipeline, and
    the pass descriptor. The registry of concrete passes lives in
    {!Pass_manager}; this module owns the data they transform and the
    introspection used for instrumentation, IR dumps and verification. *)

type piece =
  | Group of {
      units : Synthesis.unit_code list;
          (** A fusion group: adjacent units sharing one tile loop.
              Singleton before the [fuse] pass. *)
      tile : Fusion.tile_plan option;  (** Set by the [tile] pass. *)
    }
  | Hoisted of {
      unit_ : Synthesis.unit_code;
      segments : Pattern_match.segment list;
          (** Whole-batch GEMM segments produced by [batch-gemm]. *)
    }

type state = {
  config : Config.t;
  net : Net.t;
  batch : int;
  seed : int option;
  plan : Synthesis.plan option;
  fwd : piece list;
  bwd : piece list;
  fwd_sections : Program.section list option;
  bwd_sections : Program.section list option;
  par_annotated : (string * string list) list;
      (** Set by the parallelize pass: region name → loop variables it
          annotated for parallel execution, in program order. The CLI's
          [dump-ir]/[analyze] report this schedule. *)
  par_verdicts : (string * Ir_deps.loop_report list) list;
      (** Set by the parallelize pass: region name → {!Ir_deps}
          dependence verdicts for every parallel loop, in program
          order. Surfaced through {!Pass_manager.report}. *)
  tile_groups : (string * int * int) list;
      (** Set by the tile pass: (group label, anchor y extent, chosen
          tile rows) per tiled group, forward then backward — the
          divisor lattice [latte tune] searches, surfaced through
          {!Pass_manager.report}. *)
}

type info = {
  name : string;
  description : string;
  paper : string;
  required : bool;
  default_on : Config.t -> bool;
  run : state -> state;
}

val initial : ?seed:int -> Config.t -> Net.t -> state

val map_units : (Synthesis.unit_code -> Synthesis.unit_code) -> state -> state
(** Rewrite every unit still held in a {!Group} (hoisted units are left
    alone — their code lives in segments). *)

val map_pieces : (piece -> piece) -> state -> state
val map_sections : (Program.section -> Program.section) -> state -> state

val regions : state -> (string * string list * Ir.stmt list) list
(** Named IR regions of the current state as
    [(name, implicitly-bound vars, stmts)]: per-section once assembled,
    per-unit before. *)

val stats : state -> Ir_stats.t
val shape_of : state -> string -> Shape.t option
val dump : state -> string
val verify : state -> Ir_verify.error list

val analyze : state -> Ir_bounds.report option
(** Interval bounds / safety analysis ({!Ir_bounds}) of every region.
    [None] before the synthesize pass (no buffer plan to check against).
    The implicit batch variable is bound to [\[0, batch)]; the
    use-before-init / dead-store flow check is included only once
    assemble has fixed section order. *)

val finish : state -> Program.t
(** Package the assembled sections into a {!Program.t}. Raises
    [Invalid_argument] if synthesize/assemble have not run. *)

(** The `latte tune` search loop: cost-model-pruned, measurement-ranked
    schedule autotuning with a persisted per-(model, machine) cache.

    Candidates are enumerated from the structure the default compilation
    exposes ({!Pass_manager.report.tile_groups}): per-group tile targets
    from the anchor extent's divisor lattice, fusion groups toggled back
    off, and worker-domain counts 2..N. {!Cost_model.estimate_sections}
    prunes the candidates to a measured frontier; real median-of-k
    forward runs (after a deterministic seeded input fill) rank it.

    Every measured candidate is asserted {b bit-identical} to the
    default schedule over the entire buffer state before it may win — a
    schedule only moves work around, it never changes what is computed.
    Candidates whose outputs differ are rejected and reported.

    The winner persists to {!Tune_cache} (unless caching is off), keyed
    by (network fingerprint, machine, safety mode, precision), where
    {!Pipeline.compile_pair} and {!Executor.prepare} pick it up
    automatically. A second [tune] of the same model resolves entirely
    from the cache. *)

type budget = Small | Medium | Large

val budget_of_string : string -> budget option
val budget_name : budget -> string

type trial = {
  t_schedule : Schedule.t;
  t_note : string;
      (** What kind of candidate: ["tile"], ["nofuse"], ["combined"] or
          ["domains"]. *)
  t_estimate : float;  (** Cost-model forward seconds (0 for domain trials). *)
  t_measured : float option;
      (** Median measured forward seconds; [None] when the candidate was
          pruned by the cost model or rejected by the bit-identity
          assertion. *)
}

type result = {
  winner : Schedule.t;
      (** The empty schedule when nothing beat the default. *)
  default_seconds : float;
  tuned_seconds : float;
  trials : trial list;  (** Measured trials first, then pruned ones. *)
  from_cache : bool;  (** [true]: resolved without any measurement. *)
  cache_key : string option;  (** [None] when caching was disabled. *)
  groups : (string * int * int) list;
      (** (group label, anchor extent, default tile rows) — the search
          lattice, for the CLI's winner-vs-default table. *)
}

val tune :
  ?budget:budget ->
  ?seed:int ->
  ?max_domains:int ->
  ?use_cache:bool ->
  ?cache_dir:string ->
  ?force:bool ->
  ?machine:Machine.cpu ->
  ?measure:(Executor.t -> float) ->
  ?log:(string -> unit) ->
  config:Config.t ->
  build:(unit -> Net.t) ->
  unit ->
  result
(** Search for the best schedule for [build ()] compiled under [config]
    (whose own [schedule] field is ignored — it is what tuning
    replaces).

    [budget] scales the frontier size, tile targets per group and
    median-of-k iterations (default [Medium]). [seed] fixes parameter
    initialization and the input fill (default 1). [max_domains] caps
    the domain-count stage (default [Domain.recommended_domain_count]);
    the stage is skipped when it is 1. [use_cache]/[cache_dir] override
    the [LATTE_TUNE_CACHE]-derived location; [force] re-tunes and
    overwrites an existing entry. [machine] is the cost model used for
    pruning only — measurement happens on the host. [measure] replaces
    the wall-clock measurement (median-of-k {!Executor.time_forward})
    with a caller-supplied one — the determinism tests inject a
    synthetic deterministic measure here. [log] receives the search
    trace one line at a time. *)

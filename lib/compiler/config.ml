type t = {
  pattern_match : bool;
  tiling : bool;
  fusion : bool;
  parallelize : bool;
  tile_size : int;
  batch_gemm : bool;
  inplace_activation : bool;
  bounds_checks : bool;
  num_domains : int;
  precision : Precision.preset;
}

(* The runtime worker-domain count defaults from the environment so an
   entire run (tests included) can be switched to parallel execution
   with LATTE_DOMAINS=N and no code changes. *)
let env_domains () =
  match Sys.getenv_opt "LATTE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
  | None -> 1

(* Likewise the execution precision: LATTE_PRECISION=int8 switches every
   default-config run (the CI quantized-serving job) without code
   changes. Malformed or missing means f32. *)
let env_precision () =
  match Sys.getenv_opt "LATTE_PRECISION" with
  | Some s -> (
      match Precision.preset_of_string (String.trim s) with
      | Some p -> p
      | None -> `F32)
  | None -> `F32

let default =
  {
    pattern_match = true;
    tiling = true;
    fusion = true;
    parallelize = true;
    tile_size = 4;
    batch_gemm = true;
    inplace_activation = true;
    bounds_checks = true;
    num_domains = env_domains ();
    precision = env_precision ();
  }

let unoptimized =
  {
    pattern_match = false;
    tiling = false;
    fusion = false;
    parallelize = false;
    tile_size = 4;
    batch_gemm = false;
    inplace_activation = false;
    bounds_checks = true;
    num_domains = 1;
    precision = `F32;
  }

let with_flags ?pattern_match ?tiling ?fusion ?parallelize ?tile_size ?batch_gemm
    ?inplace_activation ?bounds_checks ?num_domains ?precision t =
  {
    pattern_match = Option.value ~default:t.pattern_match pattern_match;
    tiling = Option.value ~default:t.tiling tiling;
    fusion = Option.value ~default:t.fusion fusion;
    parallelize = Option.value ~default:t.parallelize parallelize;
    tile_size = Option.value ~default:t.tile_size tile_size;
    batch_gemm = Option.value ~default:t.batch_gemm batch_gemm;
    inplace_activation = Option.value ~default:t.inplace_activation inplace_activation;
    bounds_checks = Option.value ~default:t.bounds_checks bounds_checks;
    num_domains = Option.value ~default:t.num_domains num_domains;
    precision = Option.value ~default:t.precision precision;
  }

let normalize t =
  let warnings = ref [] in
  let warn w = warnings := w :: !warnings in
  let t =
    if t.fusion && not t.tiling then begin
      warn
        "config: cross-layer fusion requires tiling (fused tiles are what \
         fusion schedules); disabling fusion (pass `fuse')";
      { t with fusion = false }
    end
    else t
  in
  let t =
    if t.batch_gemm && not t.pattern_match then begin
      warn
        "config: batch-GEMM hoisting requires GEMM pattern matching (there \
         are no GEMV calls to stack); disabling batch-gemm (pass `batch-gemm')";
      { t with batch_gemm = false }
    end
    else t
  in
  let t =
    if t.num_domains < 1 then begin
      warn
        (Printf.sprintf
           "config: num_domains %d < 1 makes no worker available; clamping to 1"
           t.num_domains);
      { t with num_domains = 1 }
    end
    else t
  in
  (t, List.rev !warnings)

let describe t =
  let flag name b = if b then [ name ] else [] in
  let parts =
    flag "gemm" t.pattern_match @ flag "tiling" t.tiling @ flag "fusion" t.fusion
    @ flag "parallel" t.parallelize
    @ flag "batch-gemm" t.batch_gemm
    @ flag "inplace" t.inplace_activation
  in
  let base = if parts = [] then "none" else String.concat "+" parts in
  (* Precision enters the description (and thus every compile-cache key
     built from it) only when it departs from f32, keeping the f32
     spelling byte-identical to what tools and tests already pin. *)
  match t.precision with
  | `F32 -> base
  | p -> base ^ "+" ^ Precision.preset_to_string p

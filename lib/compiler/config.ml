type t = {
  pattern_match : bool;
  tiling : bool;
  fusion : bool;
  parallelize : bool;
  tile_size : int;
  batch_gemm : bool;
  inplace_activation : bool;
  bounds_checks : bool;
  num_domains : int;
  precision : Precision.preset;
  schedule : Schedule.t option;
}

(* The one env-parsing seam (the actual parsers live in Latte_env, one
   library below, so Executor.Run_opts — which cannot see this module —
   shares the same implementations). An entire run (tests included) can
   be switched to parallel execution with LATTE_DOMAINS=N, to another
   precision with LATTE_PRECISION=int8, or pointed at a different tuning
   cache with LATTE_TUNE_CACHE=DIR (or `off'), with no code changes.
   Malformed values always mean the default. *)
type env = {
  env_domains : int;
  env_precision : Precision.preset;
  env_tune_cache : Latte_env.tune_cache;
}

let of_env () =
  {
    env_domains = Latte_env.domains ();
    env_precision = Latte_env.precision ();
    env_tune_cache = Latte_env.tune_cache ();
  }

let default =
  let env = of_env () in
  {
    pattern_match = true;
    tiling = true;
    fusion = true;
    parallelize = true;
    tile_size = 4;
    batch_gemm = true;
    inplace_activation = true;
    bounds_checks = true;
    num_domains = env.env_domains;
    precision = env.env_precision;
    schedule = None;
  }

let unoptimized =
  {
    pattern_match = false;
    tiling = false;
    fusion = false;
    parallelize = false;
    tile_size = 4;
    batch_gemm = false;
    inplace_activation = false;
    bounds_checks = true;
    num_domains = 1;
    precision = `F32;
    schedule = None;
  }

let with_flags ?pattern_match ?tiling ?fusion ?parallelize ?tile_size ?batch_gemm
    ?inplace_activation ?bounds_checks ?num_domains ?precision ?schedule t =
  {
    pattern_match = Option.value ~default:t.pattern_match pattern_match;
    tiling = Option.value ~default:t.tiling tiling;
    fusion = Option.value ~default:t.fusion fusion;
    parallelize = Option.value ~default:t.parallelize parallelize;
    tile_size = Option.value ~default:t.tile_size tile_size;
    batch_gemm = Option.value ~default:t.batch_gemm batch_gemm;
    inplace_activation = Option.value ~default:t.inplace_activation inplace_activation;
    bounds_checks = Option.value ~default:t.bounds_checks bounds_checks;
    num_domains = Option.value ~default:t.num_domains num_domains;
    precision = Option.value ~default:t.precision precision;
    schedule = (match schedule with Some s -> Some s | None -> t.schedule);
  }

let normalize t =
  let warnings = ref [] in
  let warn w = warnings := w :: !warnings in
  (* The schedule's domains/precision entries fold into the matching
     scalar fields (silently — they are the same decision spelled at a
     finer grain, not a conflict), its tile entries are sanity-checked,
     and tile targets under disabled tiling get a warning mirroring the
     fusion-without-tiling repair. Idempotent: a second normalize sees
     fields already equal to the schedule's values. *)
  let t =
    match t.schedule with
    | None -> t
    | Some s ->
        let s, sched_warns = Schedule.sanitize s in
        List.iter warn sched_warns;
        if s.Schedule.tiles <> [] && not t.tiling then
          warn
            "config: schedule tile targets are ignored while tiling is \
             disabled (pass `tile')";
        {
          t with
          schedule = Some s;
          num_domains = Option.value ~default:t.num_domains s.Schedule.domains;
          precision = Option.value ~default:t.precision s.Schedule.precision;
        }
  in
  let t =
    if t.fusion && not t.tiling then begin
      warn
        "config: cross-layer fusion requires tiling (fused tiles are what \
         fusion schedules); disabling fusion (pass `fuse')";
      { t with fusion = false }
    end
    else t
  in
  let t =
    if t.batch_gemm && not t.pattern_match then begin
      warn
        "config: batch-GEMM hoisting requires GEMM pattern matching (there \
         are no GEMV calls to stack); disabling batch-gemm (pass `batch-gemm')";
      { t with batch_gemm = false }
    end
    else t
  in
  let t =
    if t.num_domains < 1 then begin
      warn
        (Printf.sprintf
           "config: num_domains %d < 1 makes no worker available; clamping to 1"
           t.num_domains);
      { t with num_domains = 1 }
    end
    else t
  in
  (t, List.rev !warnings)

let describe t =
  let flag name b = if b then [ name ] else [] in
  let parts =
    flag "gemm" t.pattern_match @ flag "tiling" t.tiling @ flag "fusion" t.fusion
    @ flag "parallel" t.parallelize
    @ flag "batch-gemm" t.batch_gemm
    @ flag "inplace" t.inplace_activation
  in
  let base = if parts = [] then "none" else String.concat "+" parts in
  (* Precision enters the description (and thus every compile-cache key
     built from it) only when it departs from f32, keeping the f32
     spelling byte-identical to what tools and tests already pin. *)
  let base =
    match t.precision with
    | `F32 -> base
    | p -> base ^ "+" ^ Precision.preset_to_string p
  in
  (* Likewise the schedule: absent (the common case) changes nothing;
     present, its canonical digest distinguishes every distinct
     schedule in compile-cache keys and report rows. *)
  match t.schedule with
  | None -> base
  | Some s when Schedule.is_empty s -> base
  | Some s -> base ^ "+sched@" ^ Schedule.digest s

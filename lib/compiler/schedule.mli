(** First-class compilation schedules (the `latte tune` search space).

    A schedule overrides the scalar scheduling knobs of {!Config.t} with
    per-section decisions: tile-row targets per fusion group, fusion
    groups forced back apart, a worker-domain count and an execution
    precision. Group labels are the "+"-joined ensemble names the fuse
    pass gives its sections (e.g. ["conv1_1+relu1_1+pool1"]), so a
    schedule reads directly against [latte dump-ir] output.

    Precedence: when [Config.schedule] is set, the tile/fuse/parallelize
    passes consult it first and fall back to the config's scalar knobs
    ([tile_size], static heuristics) for anything it does not mention.
    [Config.normalize] folds [domains]/[precision] into the matching
    config fields.

    Schedules compare canonically: {!describe} sorts its parts,
    {!digest} and {!equal} derive from it, and {!of_payload} ∘
    {!to_payload} preserves {!equal}. *)

type source =
  | Cache  (** Loaded from the persisted tuning cache. *)
  | Explicit  (** Constructed by a caller (the tuner, a test, an API user). *)

type t = {
  tiles : (string * int) list;  (** Group label → anchor tile-row target. *)
  fuse_off : string list;  (** Groups to split back into singleton units. *)
  domains : int option;
  precision : Precision.preset option;
  source : source;
}

val empty : t
(** No overrides; [source = Explicit]. *)

val is_empty : t -> bool
(** [true] when the schedule overrides nothing ([source] is ignored). *)

val with_tile : string -> int -> t -> t
(** Set the tile-row target for a group label (replacing any previous
    entry for it). *)

val without_fusion : string -> t -> t
(** Mark a fusion group to be split back into singleton units. *)

val with_domains : int -> t -> t
val with_precision : Precision.preset -> t -> t
val with_source : source -> t -> t

val tile_for : t -> string -> int option
val fused : t -> string -> bool
val tile_labels : t -> string list

val source_name : t -> string
(** ["cache"] or ["explicit"] — the third value of the
    [Pass_manager.report] schedule-source column, ["static"], means no
    schedule at all. *)

val describe : t -> string
(** Canonical (sorted) human-readable form, e.g.
    ["tile(conv1+relu1)=8 nofuse(ip1+relu2) domains=2"]; ["default"]
    when empty. *)

val digest : t -> string
(** 8-hex-digit digest of {!describe} — the compact spelling in
    [Config.describe] and report rows. *)

val equal : t -> t -> bool
(** Canonical-form equality; ignores [source]. *)

val sanitize : t -> t * string list
(** Drop invalid entries (tile targets < 1) with a warning each —
    {!Config.normalize} calls this. *)

val to_payload : t -> (string * string) list
(** The {!Tune_cache} payload form. [source] is not stored. *)

val of_payload : (string * string) list -> t
(** Rebuild a schedule from a cache payload, skipping malformed and
    unknown entries (forward compatibility); [source = Cache]. *)

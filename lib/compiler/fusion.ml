open Ir

type direction = Fwd | Bwd

let fusable_pair dir ~(prev : Synthesis.unit_code) ~(cur : Synthesis.unit_code) =
  let link (consumer : Synthesis.unit_code) (producer : Synthesis.unit_code) =
    match consumer.fuse with
    | Some f -> f.exact && String.equal f.fuse_source producer.ens
    | None -> false
  in
  (not prev.barrier) && (not cur.barrier)
  && Option.is_some prev.spatial
  && Option.is_some cur.spatial
  && match dir with Fwd -> link cur prev | Bwd -> link prev cur

let make_groups dir units =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | u :: rest -> (
        match current with
        | [] -> go [ u ] acc rest
        | prev :: _ when fusable_pair dir ~prev ~cur:u -> go (u :: current) acc rest
        | _ -> go [ u ] (List.rev current :: acc) rest)
  in
  match units with [] -> [] | u :: rest -> go [ u ] [] rest

let dep_of (u : Synthesis.unit_code) =
  match u.fuse with Some f -> f.dep_y | None -> 1

let rows_per_unit dir units ~tile_rows =
  (* Accumulate scale factors walking from the anchor (most downstream
     unit) towards producers; each consumer's dependence distance scales
     everything upstream of it (Figure 11). *)
  let walk us =
    fst
      (List.fold_left
         (fun (acc, scale) u -> ((tile_rows * scale) :: acc, scale * dep_of u))
         ([], 1) us)
  in
  match dir with
  | Fwd ->
      (* Anchor is last: walking the reversed list leaves the result in
         forward order. *)
      walk (List.rev units)
  | Bwd ->
      (* Anchor is first. *)
      List.rev (walk units)

let anchor_extent dir units =
  let anchor = match dir with Fwd -> List.nth units (List.length units - 1)
                            | Bwd -> List.hd units in
  match anchor.Synthesis.spatial with
  | Some s -> Some s.y_extent
  | None -> None

type tile_plan = {
  tile_rows : int;
  n_tiles : int;
  rows : int list;
  dep : int;
}

let plan_tile ~tile_size dir units =
  (* Barrier/global units contain opaque whole-ensemble operations
     (gathers, normalization externs) that cannot be restricted to a
     row band — tiling would replay them once per tile. *)
  if List.exists (fun u -> u.Synthesis.barrier || u.Synthesis.global) units then
    None
  else
    match anchor_extent dir units with
    | None -> None
    | Some extent ->
        let tile_rows = Tiling.choose_tile_rows ~extent ~target:tile_size in
        let n_tiles = extent / tile_rows in
        if n_tiles <= 1 && List.length units = 1 then None
        else
          let rows = rows_per_unit dir units ~tile_rows in
          let dep =
            match
              (List.hd (match dir with Fwd -> List.rev units | Bwd -> units))
                .Synthesis.fuse
            with
            | Some f -> f.dep_y
            | None -> 1
          in
          Some { tile_rows; n_tiles; rows; dep }

let mk_for ?tile var lo hi body =
  For { var; lo; hi; body; parallel = false; tile; vectorize = false }

let group_section ~batch ?tile units =
  let label = String.concat "+" (List.map (fun u -> u.Synthesis.ens) units) in
  let ensembles = List.map (fun u -> u.Synthesis.ens) units in
  let pre = List.concat_map (fun u -> u.Synthesis.pre) units in
  let tile_var = "t~" ^ label in
  let tiled_body { tile_rows; n_tiles; rows; dep } =
    (* Weight-gradient GEMMs reduce over the tiled dimension (Rows_k):
       restricting them would re-touch the full parameter-gradient
       matrix once per tile. They only read values the tile loop has
       finished producing, so hoist them after it and run each once at
       full extent. *)
    let split_rows_k stmts =
      List.partition
        (fun stmt ->
          match stmt with
          | Gemm { gemm_tile = Some { role = Rows_k; _ }; _ } -> false
          | _ -> true)
        stmts
    in
    let restricted, hoisted =
      List.split
        (List.map2
           (fun (u : Synthesis.unit_code) r ->
             let body, rows_k = split_rows_k u.body in
             let body =
               match u.spatial with
               | Some sp ->
                   let y0 = Imul (Ivar tile_var, Iconst r) in
                   let y1 = Imul (Iadd (Ivar tile_var, Iconst 1), Iconst r) in
                   Tiling.restrict ~y_var:sp.y_var ~y0 ~y1 body
               | None -> body
             in
             (body, rows_k))
           units rows)
    in
    mk_for
      ~tile:{ tile_size = tile_rows; dep_distance = dep }
      tile_var (Iconst 0) (Iconst n_tiles) (List.concat restricted)
    :: List.concat hoisted
  in
  let body =
    match tile with
    | Some t -> tiled_body t
    | None -> List.concat_map (fun u -> u.Synthesis.body) units
  in
  let global = List.exists (fun u -> u.Synthesis.global) units in
  let stmts =
    if global then pre @ body
    else pre @ [ mk_for Synthesis.batch_var (Iconst 0) (Iconst batch) body ]
  in
  Program.section ~label ~ensembles stmts

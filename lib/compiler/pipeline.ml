(* The compiler driver is now a thin wrapper over the pass manager;
   see Pass_manager for the registry and instrumentation. *)

let compile ?seed config net = fst (Pass_manager.run ?seed config net)

(* Parameter initialization draws from the seeded Rng during the
   (required, config-independent) synthesize pass, so compiling the same
   network description twice with one seed yields bit-identical
   parameter values under any two configs — which is what lets the
   reference program stand in for the optimized one at serving time.

   The reference is compiled first because its fingerprint (config- and
   schedule-invariant) keys the tuning-cache consult: when the caller
   did not pin a schedule and the cache holds a tuned one for this
   (network, machine, safety, precision), the fast program is compiled
   under it — which is how Registry.compile and every serving fleet
   pick up `latte tune' winners for free. *)
let compile_pair ?seed ?opts config build =
  let ref_prog = compile ?seed Config.unoptimized (build ()) in
  let config =
    match config.Config.schedule with
    | Some _ -> config (* an explicit schedule always wins *)
    | None -> (
        match Tune_cache.dir () with
        | None -> config
        | Some dir -> (
            let key =
              Tune_cache.key
                ~fingerprint:(Program.fingerprint ref_prog)
                ~machine:(Tune_cache.machine_id ())
                ~safety:
                  (if config.Config.bounds_checks then "guard" else "unsafe")
                ~precision:(Precision.preset_to_string config.Config.precision)
            in
            match Tune_cache.lookup ~dir ~key with
            | Some payload ->
                let s = Schedule.of_payload payload in
                if Schedule.is_empty s then config
                else { config with Config.schedule = Some s }
            | None -> config))
  in
  let fast_prog = compile ?seed config (build ()) in
  let opts =
    match opts with
    | Some o -> o
    | None ->
        (* A cached schedule's domain count must reach the executor even
           though normalization (which folds it into num_domains) only
           happens inside the pass manager. *)
        let domains =
          match config.Config.schedule with
          | Some s ->
              Option.value ~default:config.Config.num_domains
                s.Schedule.domains
          | None -> config.Config.num_domains
        in
        Executor.Run_opts.with_domains domains Executor.Run_opts.default
  in
  (Executor.prepare ~opts fast_prog, Executor.prepare ~opts ref_prog)

let dump (p : Program.t) =
  let buf = Buffer.create 4096 in
  let emit dir sections =
    Buffer.add_string buf (Printf.sprintf "=== %s ===\n" dir);
    List.iter
      (fun (s : Program.section) ->
        Buffer.add_string buf (Printf.sprintf "--- section %s ---\n" s.label);
        Buffer.add_string buf (Ir_printer.stmts_to_string s.stmts))
      sections
  in
  emit "forward" p.forward;
  emit "backward" p.backward;
  (* Buffer plan: every named buffer with its shape and size; aliases
     point at the allocation that owns their storage. *)
  Buffer.add_string buf "=== buffers ===\n";
  List.iter
    (fun name ->
      let shape = Buffer_pool.shape p.buffers name in
      let bytes = Buffer_pool.elem_bytes p.buffers name * Shape.numel shape in
      let phys = Buffer_pool.physical p.buffers name in
      (* Storage column only for packed buffers, so f32 plans print
         byte-identically to what the golden dumps pin. *)
      let storage =
        match Buffer_pool.precision p.buffers name with
        | Precision.Any Precision.F32 -> ""
        | a -> Printf.sprintf "  [%s]" (Precision.any_name a)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %-20s %10d bytes%s%s\n" name
           (Shape.to_string shape) bytes storage
           (if String.equal phys name then ""
            else Printf.sprintf "  (alias of %s)" phys)))
    (Buffer_pool.names p.buffers);
  Buffer.add_string buf
    (Printf.sprintf "total allocated: %d bytes\n"
       (Buffer_pool.total_bytes p.buffers));
  Buffer.add_string buf "=== parameters ===\n";
  List.iter
    (fun (pr : Program.param) ->
      let size =
        match List.assoc_opt pr.grad_buf p.grad_sizes with
        | Some n -> n
        | None -> Shape.numel (Buffer_pool.shape p.buffers pr.value_buf)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-28s value=%-20s grad=%-22s %8d elems  lr_mult=%g\n"
           pr.param_name pr.value_buf pr.grad_buf size pr.lr_mult))
    p.params;
  Buffer.contents buf

(* The instrumented pass manager: the ordered registry of compiler
   passes, Config.t <-> pass-set resolution, and the driver that runs
   the pipeline with per-pass timing, IR statistics, optional
   well-formedness verification and IR dumps. *)

open Pass

(* ------------------------------------------------------------------ *)
(* Pass implementations                                                *)
(* ------------------------------------------------------------------ *)

let synthesize st =
  let plan = Synthesis.run ?seed:st.seed st.config st.net in
  let pieces units =
    List.map (fun u -> Group { units = [ u ]; tile = None }) units
  in
  {
    st with
    plan = Some plan;
    fwd = pieces plan.Synthesis.fwd_units;
    bwd = pieces plan.Synthesis.bwd_units;
  }

let gemm_match st =
  let plan = Option.get st.plan in
  let shape_of name = Tensor.shape (Buffer_pool.lookup plan.Synthesis.buffers name) in
  Pass.map_units
    (fun (u : Synthesis.unit_code) ->
      let y_info =
        Option.map
          (fun (s : Synthesis.spatial) -> (s.Synthesis.y_var, s.Synthesis.y_extent))
          u.spatial
      in
      { u with body = Pattern_match.rewrite ~shape_of ~y_info u.body })
    st

let batch_gemm st =
  Pass.map_pieces
    (fun p ->
      match p with
      | Group { units = [ u ]; tile = None } -> (
          match
            Pattern_match.hoist_batch ~batch_var:Synthesis.batch_var
              ~batch:st.batch u.Synthesis.body
          with
          | Some segments -> Hoisted { unit_ = u; segments }
          | None -> p)
      | p -> p)
    st

let group_label units =
  String.concat "+" (List.map (fun (u : Synthesis.unit_code) -> u.Synthesis.ens) units)

let fuse st =
  let sched = st.config.Config.schedule in
  (* Schedule consult: groups the schedule names in [fuse_off] are split
     back into singleton units — the tuner's "is this fusion actually
     paying?" toggle. The heuristic grouping runs first so labels are
     the same strings either way. *)
  let split_off groups =
    match sched with
    | None -> groups
    | Some s ->
        List.concat_map
          (fun us ->
            if Schedule.fused s (group_label us) then [ us ]
            else List.map (fun u -> [ u ]) us)
          groups
  in
  let fuse_dir dir pieces =
    (* Merge adjacent Group pieces; hoisted units break runs exactly as
       batch-GEMM sections did in the monolithic driver. *)
    let flush run acc =
      match run with
      | [] -> acc
      | _ ->
          let units = List.concat (List.rev run) in
          List.fold_left
            (fun acc us -> Group { units = us; tile = None } :: acc)
            acc
            (split_off (Fusion.make_groups dir units))
    in
    let rec go run acc = function
      | [] -> List.rev (flush run acc)
      | Group { units; _ } :: rest -> go (units :: run) acc rest
      | (Hoisted _ as h) :: rest -> go [] (h :: flush run acc) rest
    in
    go [] [] pieces
  in
  { st with fwd = fuse_dir Fusion.Fwd st.fwd; bwd = fuse_dir Fusion.Bwd st.bwd }

let tile st =
  let sched = st.config.Config.schedule in
  let groups = ref [] in
  let matched = Hashtbl.create 8 in
  let tile_dir dir =
    List.map (fun p ->
        match p with
        | Group g ->
            let label = group_label g.units in
            (* Schedule consult: a per-group tile target wins over the
               global Config.tile_size fallback. Either way the chosen
               rows come from the divisor lattice of the anchor extent
               (Tiling.choose_tile_rows), so any target is safe. *)
            let target =
              match Option.bind sched (fun s -> Schedule.tile_for s label) with
              | Some n ->
                  Hashtbl.replace matched label ();
                  n
              | None -> st.config.Config.tile_size
            in
            let tile = Fusion.plan_tile ~tile_size:target dir g.units in
            (match (tile, Fusion.anchor_extent dir g.units) with
            | Some t, Some extent ->
                groups := (label, extent, t.Fusion.tile_rows) :: !groups
            | _ -> ());
            Group { g with tile }
        | p -> p)
  in
  let fwd = tile_dir Fusion.Fwd st.fwd in
  let bwd = tile_dir Fusion.Bwd st.bwd in
  (match sched with
  | Some s ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem matched l) then
            Printf.eprintf
              "latte: warning: schedule names tile group `%s' but this \
               compilation has no such group; entry ignored\n%!"
              l)
        (Schedule.tile_labels s)
  | None -> ());
  { st with fwd; bwd; tile_groups = List.rev !groups }

let assemble st =
  let plan = Option.get st.plan in
  let mk_for var lo hi body =
    Ir.For { var; lo; hi; body; parallel = false; tile = None; vectorize = false }
  in
  let sections_of_piece p =
    match p with
    | Group { units; tile } -> [ Fusion.group_section ~batch:st.batch ?tile units ]
    | Hoisted { unit_ = u; segments } ->
        let first = ref true in
        List.map
          (fun seg ->
            let stmts =
              match seg with
              | Pattern_match.Global stmts -> stmts
              | Pattern_match.Per_item stmts ->
                  [
                    mk_for Synthesis.batch_var (Ir.Iconst 0)
                      (Ir.Iconst st.batch) stmts;
                  ]
            in
            let stmts = if !first then u.Synthesis.pre @ stmts else stmts in
            let label =
              match seg with
              | Pattern_match.Global _ -> u.Synthesis.ens ^ ":batch-gemm"
              | Pattern_match.Per_item _ -> u.Synthesis.ens
            in
            first := false;
            Program.section ~label ~ensembles:[ u.Synthesis.ens ] stmts)
          segments
  in
  let zero =
    Program.section ~label:"zero-gradients" ~ensembles:[]
      plan.Synthesis.zero_grads
  in
  {
    st with
    fwd_sections = Some (List.concat_map sections_of_piece st.fwd);
    bwd_sections = Some (zero :: List.concat_map sections_of_piece st.bwd);
  }

let simplify st =
  Pass.map_sections
    (fun (s : Program.section) -> { s with Program.stmts = Ir.simplify_stmts s.Program.stmts })
    st

let parallelize st =
  (* Batch and tile loops are the loops the compiler constructed with
     per-iteration-disjoint work (§5.4.3); annotate them for the
     parallel scheduler / cost model. The verifier checks the
     annotation is dependence-free. *)
  let annotate stmts =
    Ir.map_stmts
      (fun s ->
        match s with
        | Ir.For l when String.equal l.var Synthesis.batch_var || l.tile <> None
          ->
            Ir.For { l with parallel = true }
        | s -> s)
      stmts
  in
  let st =
    Pass.map_sections
      (fun (s : Program.section) -> { s with Program.stmts = annotate s.Program.stmts })
      st
  in
  (* Second, dependence-driven sweep: annotate loops the syntactic rule
     skips when Ir_deps proves every buffer's footprint Independent
     across iterations. The runtime partitions only the outermost
     parallel loop of a section; inner annotations record legal
     parallelism for the cost model and the scheduler. *)
  let shape_of buf =
    Option.map (fun (s : Shape.t) -> (s :> int array)) (Pass.shape_of st buf)
  in
  let const_trip l =
    match
      ( Ir_analysis.const_value l.Ir.lo,
        Ir_analysis.const_value l.Ir.hi )
    with
    | Some lo, Some hi -> Some (hi - lo)
    | _ -> None
  in
  let deps_annotate stmts =
    let rec go env s =
      match s with
      | Ir.For l ->
          let body = List.map (go (Ir_bounds.bind_range l.var ~lo:l.lo ~hi:l.hi env)) l.body in
          let l = { l with Ir.body } in
          let provably_independent () =
            List.for_all
              (fun (bv : Ir_deps.buffer_verdict) ->
                bv.bv_verdict = Ir_deps.Independent)
              (Ir_deps.analyze_loop ~env ~shape_of l)
          in
          if
            (not l.Ir.parallel)
            && (match const_trip l with Some t -> t > 1 | None -> true)
            && provably_independent ()
          then Ir.For { l with Ir.parallel = true }
          else Ir.For l
      | Ir.If (c, t, e) ->
          Ir.If
            ( c,
              List.map (go (Ir_bounds.assume c env)) t,
              List.map (go (Ir_bounds.assume_not c env)) e )
      | Ir.Store _ | Ir.Accum _ | Ir.Memset _ | Ir.Gemm _
      | Ir.Fusion_barrier _ | Ir.Extern _ ->
          s
    in
    List.map (go Ir_bounds.empty_env) stmts
  in
  (* Schedule consult: when the schedule pins execution to a single
     domain, the dependence-driven sweep buys nothing at runtime (the
     executor partitions nothing) — skip it and keep only the free
     syntactic annotation. Outputs are bit-identical either way. *)
  let single_domain =
    match st.config.Config.schedule with
    | Some s -> s.Schedule.domains = Some 1
    | None -> false
  in
  let st =
    if single_domain then st
    else
      Pass.map_sections
        (fun (s : Program.section) ->
          { s with Program.stmts = deps_annotate s.Program.stmts })
        st
  in
  (* Record what was scheduled so dump-ir/analyze can report it. *)
  let parallel_vars stmts =
    let vars = ref [] in
    let rec go s =
      match s with
      | Ir.For l ->
          if l.parallel then vars := l.var :: !vars;
          List.iter go l.body
      | Ir.If (_, t, e) ->
          List.iter go t;
          List.iter go e
      | Ir.Store _ | Ir.Accum _ | Ir.Memset _ | Ir.Gemm _ | Ir.Fusion_barrier _
      | Ir.Extern _ ->
          ()
    in
    List.iter go stmts;
    List.rev !vars
  in
  let par_annotated =
    List.filter_map
      (fun (region, _, stmts) ->
        match parallel_vars stmts with
        | [] -> None
        | vars -> Some (region, vars))
      (Pass.regions st)
  in
  let par_verdicts =
    List.filter_map
      (fun (region, _, stmts) ->
        match Ir_deps.analyze_stmts ~shape_of stmts with
        | [] -> None
        | reports -> Some (region, reports))
      (Pass.regions st)
  in
  { st with Pass.par_annotated; Pass.par_verdicts }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : Pass.info list =
  [
    {
      name = "layout";
      paper = "§3.2/§5.2";
      description =
        "shared-variable in-place layout: single-consumer activation values \
         alias their source buffer (realized during buffer planning in \
         synthesize)";
      required = false;
      default_on = (fun c -> c.Config.inplace_activation);
      run = Fun.id;
    };
    {
      name = "synthesize";
      paper = "§5.2–§5.3";
      description =
        "loop-nest synthesis: AoS→SoA kernel rewriting, shared-variable \
         analysis, data-copy tasks, buffer planning";
      required = true;
      default_on = (fun _ -> true);
      run = synthesize;
    };
    {
      name = "gemm";
      paper = "§5.4.1";
      description = "rewrite dot-product loop nests into GEMM library calls";
      required = false;
      default_on = (fun c -> c.Config.pattern_match);
      run = gemm_match;
    };
    {
      name = "batch-gemm";
      paper = "§5.4.1";
      description =
        "hoist per-item GEMV/rank-1 calls into whole-batch GEMM sections";
      required = false;
      default_on = (fun c -> c.Config.batch_gemm);
      run = batch_gemm;
    };
    {
      name = "fuse";
      paper = "§5.4.2";
      description =
        "group adjacent units whose connection windows tile exactly, so they \
         share one tile loop";
      required = false;
      default_on = (fun c -> c.Config.fusion);
      run = fuse;
    };
    {
      name = "tile";
      paper = "§5.4.1";
      description =
        "plan row-band tiling of each group's anchor y dimension, scaling \
         producer tiles by dependence distances";
      required = false;
      default_on = (fun c -> c.Config.tiling);
      run = tile;
    };
    {
      name = "assemble";
      paper = "§5.3";
      description =
        "emit executable sections: batch loops, tile loops with restricted \
         unit bodies, hoisted batch-GEMM segments, zero-gradient prologue";
      required = true;
      default_on = (fun _ -> true);
      run = assemble;
    };
    {
      name = "simplify";
      paper = "—";
      description =
        "post-assembly cleanup: constant folding, dead/empty loop removal";
      required = false;
      default_on = (fun _ -> true);
      run = simplify;
    };
    {
      name = "parallelize";
      paper = "§5.4.3";
      description = "annotate batch and tile loops for batch×tile parallelism";
      required = false;
      default_on = (fun c -> c.Config.parallelize);
      run = parallelize;
    };
  ]

let passes () = registry

let pass_names () = List.map (fun (p : Pass.info) -> p.name) registry

let optional_pass_names () =
  List.filter_map
    (fun (p : Pass.info) -> if p.required then None else Some p.name)
    registry

let validate name =
  if not (List.mem name (pass_names ())) then
    invalid_arg
      (Printf.sprintf "unknown compiler pass `%s' (known passes: %s)" name
         (String.concat ", " (pass_names ())))

(* ------------------------------------------------------------------ *)
(* Config <-> pass-set resolution                                      *)
(* ------------------------------------------------------------------ *)

let set_of_config ~simplify config =
  List.filter_map
    (fun (p : Pass.info) ->
      if p.required then None
      else if p.name = "simplify" then if simplify then Some p.name else None
      else if p.default_on config then Some p.name
      else None)
    registry

let config_of_set base set =
  let mem n = List.mem n set in
  {
    base with
    Config.inplace_activation = mem "layout";
    pattern_match = mem "gemm";
    batch_gemm = mem "batch-gemm";
    fusion = mem "fuse";
    tiling = mem "tile";
    parallelize = mem "parallelize";
  }

let parse_spec s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun e -> e <> "")

let interpret ~defaults entries =
  let signed e = String.length e > 1 && (e.[0] = '-' || e.[0] = '+') in
  match entries with
  | [ "all" ] -> optional_pass_names ()
  | [ "none" ] -> []
  | entries when List.for_all signed entries ->
      List.fold_left
        (fun set e ->
          let n = String.sub e 1 (String.length e - 1) in
          validate n;
          if e.[0] = '-' then List.filter (( <> ) n) set
          else if List.mem n set then set
          else set @ [ n ])
        defaults entries
  | entries ->
      List.iter validate entries;
      List.sort_uniq String.compare entries

(* Resolve the enabled-pass set and the matching normalized config.
   [passes] (the CLI's --passes=LIST) overrides the config-derived
   defaults: "all", "none", an exact comma list, or +name/-name edits
   of the defaults. *)
let resolve ?passes config =
  match passes with
  | None ->
      let config, warns = Config.normalize config in
      (set_of_config ~simplify:true config, config, warns)
  | Some entries ->
      let base, _ = Config.normalize config in
      let defaults = set_of_config ~simplify:true base in
      let set = interpret ~defaults entries in
      let simplify = List.mem "simplify" set in
      let cfg, warns = Config.normalize (config_of_set config set) in
      (set_of_config ~simplify cfg, cfg, warns)

(* ------------------------------------------------------------------ *)
(* The instrumented driver                                             *)
(* ------------------------------------------------------------------ *)

type outcome = {
  info : Pass.info;
  enabled : bool;
  seconds : float;
  stats : Ir_stats.t;  (** IR census after the pass. *)
  dump : string option;  (** IR listing, when requested via [dump_after]. *)
  bounds : Ir_bounds.report option;
      (** Bounds/safety analysis after the pass, under [~verify:true]. *)
  sched_source : string option;
      (** For the schedule-consulting passes (fuse/tile/parallelize)
          when enabled: which schedule source drove the decisions —
          "static" | "cache" | "explicit". *)
}

type report = {
  outcomes : outcome list;
  warnings : string list;
  verified : bool;
  total_seconds : float;
  parallel_annotated : (string * string list) list;
  parallel_verdicts : (string * Ir_deps.loop_report list) list;
  schedule_source : string;
      (** "static" (no schedule), "cache" or "explicit". *)
  tile_groups : (string * int * int) list;
      (** (group label, anchor extent, tile rows) per tiled group,
          forward then backward — empty when the tile pass did not
          run. *)
}

exception Verification_failed of string * Ir_verify.error list
exception Analysis_failed of string * Ir_bounds.finding list

let () =
  Printexc.register_printer (function
    | Verification_failed (pass, errs) ->
        Some
          (Printf.sprintf "IR verification failed after pass `%s':\n%s" pass
             (String.concat "\n" (List.map Ir_verify.to_string errs)))
    | Analysis_failed (pass, findings) ->
        Some
          (Printf.sprintf "bounds analysis failed after pass `%s':\n%s" pass
             (String.concat "\n"
                (List.map Ir_bounds.finding_to_string findings)))
    | _ -> None)

let run ?seed ?passes ?(verify = false) ?(dump_after = []) config net =
  List.iter validate (List.filter (( <> ) "all") dump_after);
  let enabled, config, warnings = resolve ?passes config in
  List.iter (fun w -> Printf.eprintf "latte: warning: %s\n%!" w) warnings;
  let sched_src =
    match config.Config.schedule with
    | None -> "static"
    | Some s when Schedule.is_empty s -> "static"
    | Some s -> Schedule.source_name s
  in
  let consults_schedule name =
    List.mem name [ "fuse"; "tile"; "parallelize" ]
  in
  let want_dump name = List.mem "all" dump_after || List.mem name dump_after in
  let t_start = Unix.gettimeofday () in
  let st, outcomes_rev =
    List.fold_left
      (fun (st, acc) (p : Pass.info) ->
        let on = p.required || List.mem p.name enabled in
        let t0 = Unix.gettimeofday () in
        let st = if on then p.run st else st in
        let seconds = Unix.gettimeofday () -. t0 in
        if verify && on then begin
          match Pass.verify st with
          | [] -> ()
          | errs -> raise (Verification_failed (p.name, errs))
        end;
        let bounds = if verify && on then Pass.analyze st else None in
        (match bounds with
        | Some rep -> (
            match Ir_bounds.fatal_findings rep with
            | [] -> ()
            | fatal -> raise (Analysis_failed (p.name, fatal)))
        | None -> ());
        let dump = if on && want_dump p.name then Some (Pass.dump st) else None in
        let sched_source =
          if on && consults_schedule p.name then Some sched_src else None
        in
        ( st,
          {
            info = p;
            enabled = on;
            seconds;
            stats = Pass.stats st;
            dump;
            bounds;
            sched_source;
          }
          :: acc ))
      (Pass.initial ?seed config net, [])
      registry
  in
  let prog = Pass.finish st in
  (* The f16 preset is static — activations pack to half storage with
     identity qparams, no calibration needed — so it applies at compile
     time, whichever driver ran the passes. The int8 preset needs
     calibration data and is applied post-training by the caller
     (Quantize.quantize at serving/eval time). *)
  (match config.Config.precision with
  | `F16 ->
      ignore
        (Quantize.apply prog
           ~kind:(Precision.Any Precision.F16)
           (List.map (fun b -> (b, 0.0)) (Quantize.f16_candidates prog)))
  | `F32 | `I8 -> ());
  ( prog,
    {
      outcomes = List.rev outcomes_rev;
      warnings;
      verified = verify;
      total_seconds = Unix.gettimeofday () -. t_start;
      parallel_annotated = st.Pass.par_annotated;
      parallel_verdicts = st.Pass.par_verdicts;
      schedule_source = sched_src;
      tile_groups = st.Pass.tile_groups;
    } )

(** Cross-layer fusion of tiled loops (§5.4.2) and section assembly.

    Consecutive units fuse when the consumer's connection to the
    producer has an exactly-tiling window along y: the dependence
    distance equals the window extent with no padding (ReLU: 1/1,
    2x2-stride-2 pooling: 2/2). The producer's tile is scaled by the
    dependence distance — Figure 11's "factor 2 larger tile". Overlapping
    windows (stride-1 convolutions) or barriers (normalization, gathers)
    start a new group, matching the paper's observation that consecutive
    convolution layers cannot be fused.

    Under the pass manager, grouping ({!make_groups}), tile planning
    ({!plan_tile}) and section emission ({!group_section}) are separate
    passes; parallel annotations are added afterwards by the
    [parallelize] pass, so sections are emitted serial. *)

type direction = Fwd | Bwd

val make_groups :
  direction ->
  Synthesis.unit_code list ->
  Synthesis.unit_code list list
(** Partition units (in execution order) into fusion groups; singleton
    groups are unfused units. *)

val rows_per_unit :
  direction -> Synthesis.unit_code list -> tile_rows:int -> int list
(** Rows of each unit's y dimension per tile, anchored at the most
    downstream unit's [tile_rows] and scaled through the dependence
    distances. *)

val anchor_extent : direction -> Synthesis.unit_code list -> int option
(** The y extent of the group's anchor (most downstream) unit — the
    divisor lattice [latte tune] enumerates tile targets from. [None]
    when the anchor has no spatial metadata. *)

type tile_plan = {
  tile_rows : int;  (** Anchor-unit rows per tile. *)
  n_tiles : int;
  rows : int list;  (** Rows per unit, in execution order. *)
  dep : int;  (** Dependence distance recorded on the tile loop. *)
}

val plan_tile :
  tile_size:int ->
  direction ->
  Synthesis.unit_code list ->
  tile_plan option
(** Decide whether (and how) a group's anchor y dimension is tiled.
    [None] for barrier/global groups, groups without spatial metadata,
    and trivial single-unit single-tile groups. *)

val group_section :
  batch:int ->
  ?tile:tile_plan ->
  Synthesis.unit_code list ->
  Program.section
(** Emit one section for the group: batch loop and, when a tile plan is
    given, the tile loop with each unit's body restricted to its row
    band (weight-gradient Rows_k GEMMs hoisted after the tile loop).
    All loops are emitted serial; the [parallelize] pass annotates. *)

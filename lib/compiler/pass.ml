(* The typed state threaded through the compiler's pass pipeline, plus
   the pass descriptor. Pass implementations and the registry live in
   Pass_manager; this module owns the data they transform. *)

type piece =
  | Group of { units : Synthesis.unit_code list; tile : Fusion.tile_plan option }
  | Hoisted of { unit_ : Synthesis.unit_code; segments : Pattern_match.segment list }

type state = {
  config : Config.t;  (* Normalized; pass enablement mirrors its flags. *)
  net : Net.t;
  batch : int;
  seed : int option;
  plan : Synthesis.plan option;  (* Set by the synthesize pass. *)
  fwd : piece list;
  bwd : piece list;
  fwd_sections : Program.section list option;  (* Set by assemble. *)
  bwd_sections : Program.section list option;  (* Includes zero-gradients. *)
  par_annotated : (string * string list) list;
      (* Set by the parallelize pass: region name -> loop variables it
         annotated for parallel execution, in program order. *)
  par_verdicts : (string * Ir_deps.loop_report list) list;
      (* Set by the parallelize pass: region name -> per-parallel-loop
         dependence verdicts from Ir_deps, in program order. *)
  tile_groups : (string * int * int) list;
      (* Set by the tile pass: (group label, anchor extent, tile rows)
         for every group it planned a tile for, forward then backward —
         the divisor lattice the tuner searches and the winner-vs-default
         rows the CLI prints. *)
}

type info = {
  name : string;
  description : string;
  paper : string;  (* Paper section implemented, e.g. "§5.4.1". *)
  required : bool;  (* Structural pass; cannot be disabled. *)
  default_on : Config.t -> bool;
  run : state -> state;
}

let initial ?seed config net =
  {
    config;
    net;
    batch = Net.batch_size net;
    seed;
    plan = None;
    fwd = [];
    bwd = [];
    fwd_sections = None;
    bwd_sections = None;
    par_annotated = [];
    par_verdicts = [];
    tile_groups = [];
  }

let map_units f st =
  let piece = function
    | Group g -> Group { g with units = List.map f g.units }
    | Hoisted _ as h -> h
  in
  { st with fwd = List.map piece st.fwd; bwd = List.map piece st.bwd }

let map_pieces f st = { st with fwd = List.map f st.fwd; bwd = List.map f st.bwd }

let map_sections f st =
  let dir = Option.map (List.map f) in
  { st with fwd_sections = dir st.fwd_sections; bwd_sections = dir st.bwd_sections }

(* Named IR regions of the current state, with the loop variables that
   are implicitly bound in each (the batch variable for per-item unit
   bodies). The verifier and the [--dump-ir-after] dumps both walk
   these. *)
let regions st =
  match (st.fwd_sections, st.bwd_sections) with
  | Some fwd, Some bwd ->
      List.map
        (fun (s : Program.section) -> ("forward/" ^ s.Program.label, [], s.Program.stmts))
        fwd
      @ List.map
          (fun (s : Program.section) ->
            ("backward/" ^ s.Program.label, [], s.Program.stmts))
          bwd
  | _ ->
      let unit_regions dir (u : Synthesis.unit_code) =
        let body_bound = if u.global then [] else [ Synthesis.batch_var ] in
        (match u.pre with
        | [] -> []
        | pre -> [ (Printf.sprintf "%s/%s (pre)" dir u.ens, [], pre) ])
        @ [ (Printf.sprintf "%s/%s" dir u.ens, body_bound, u.body) ]
      in
      let piece_regions dir p =
        match p with
        | Group { units; _ } -> List.concat_map (unit_regions dir) units
        | Hoisted { unit_ = u; segments } ->
            (match u.pre with
            | [] -> []
            | pre -> [ (Printf.sprintf "%s/%s (pre)" dir u.ens, [], pre) ])
            @ List.mapi
                (fun i seg ->
                  match seg with
                  | Pattern_match.Global stmts ->
                      (Printf.sprintf "%s/%s (batch-gemm %d)" dir u.ens i, [], stmts)
                  | Pattern_match.Per_item stmts ->
                      ( Printf.sprintf "%s/%s (per-item %d)" dir u.ens i,
                        [ Synthesis.batch_var ],
                        stmts ))
                segments
      in
      (match st.plan with
      | None -> []
      | Some plan ->
          List.concat_map (piece_regions "forward") st.fwd
          @ List.concat_map (piece_regions "backward") st.bwd
          @
          match plan.Synthesis.zero_grads with
          | [] -> []
          | zs -> [ ("backward/zero-gradients", [], zs) ])

let stats st =
  List.fold_left
    (fun acc (_, _, stmts) -> Ir_stats.add acc (Ir_stats.of_stmts stmts))
    Ir_stats.zero (regions st)

let shape_of st name =
  match st.plan with
  | None -> None
  | Some plan ->
      if Buffer_pool.mem plan.Synthesis.buffers name then
        Some (Tensor.shape (Buffer_pool.lookup plan.Synthesis.buffers name))
      else None

let dump st =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, _, stmts) ->
      Buffer.add_string buf (Printf.sprintf "--- %s ---\n" name);
      Buffer.add_string buf (Ir_printer.stmts_to_string stmts))
    (regions st);
  Buffer.contents buf

let verify st =
  List.concat_map
    (fun (region, bound, stmts) ->
      Ir_verify.verify_stmts ~bound ~shape_of:(shape_of st) ~region stmts)
    (regions st)

(* Interval bounds / safety analysis over the current regions. [None]
   before the synthesize pass (no buffers to check against). Bound loop
   variables get their known ranges — the implicit batch variable spans
   [0, batch); anything else is unconstrained. The data-flow component
   (use-before-init, dead stores) only makes sense once assemble has
   fixed the execution order of complete sections, so it is gated on
   that. *)
let analyze st =
  match st.plan with
  | None -> None
  | Some plan ->
      let rs = regions st in
      let bound_interval v =
        if String.equal v Synthesis.batch_var then
          Ir_bounds.interval 0 (st.batch - 1)
        else Ir_bounds.top
      in
      let rs =
        List.map
          (fun (name, bound, stmts) ->
            (name, List.map (fun v -> (v, bound_interval v)) bound, stmts))
          rs
      in
      let flow =
        match (st.fwd_sections, st.bwd_sections) with
        | Some _, Some _ ->
            let pool = plan.Synthesis.buffers in
            let phys b =
              if Buffer_pool.mem pool b then Buffer_pool.physical pool b else b
            in
            let written = Hashtbl.create 32 and read = Hashtbl.create 32 in
            List.iter
              (fun (_, _, stmts) ->
                List.iter
                  (fun b -> Hashtbl.replace written (phys b) ())
                  (Ir.buffers_written stmts);
                List.iter
                  (fun b -> Hashtbl.replace read (phys b) ())
                  (Ir.buffers_read stmts))
              rs;
            let assume_init =
              Hashtbl.fold
                (fun b () acc -> if Hashtbl.mem written b then acc else b :: acc)
                read []
            in
            let live_out =
              List.concat_map
                (fun (p : Program.param) -> [ p.value_buf; p.grad_buf ])
                plan.Synthesis.params
              |> List.map phys
            in
            Some { Ir_bounds.physical = phys; assume_init; live_out }
        | _ -> None
      in
      Some (Ir_bounds.analyze ~shape_of:(shape_of st) ?flow rs)

let finish st =
  match (st.plan, st.fwd_sections, st.bwd_sections) with
  | Some plan, Some fwd, Some bwd ->
      let schedule_descr =
        match st.config.Config.schedule with
        | Some s when not (Schedule.is_empty s) ->
            Some (Schedule.source_name s ^ ": " ^ Schedule.describe s)
        | _ -> None
      in
      {
        Program.batch_size = st.batch;
        buffers = plan.Synthesis.buffers;
        forward = fwd;
        backward = bwd;
        params = plan.Synthesis.params;
        grad_sizes = plan.Synthesis.grad_sizes;
        bounds_checks = st.config.Config.bounds_checks;
        schedule_descr;
      }
  | _ ->
      invalid_arg
        "Pass.finish: pipeline did not run the synthesize and assemble passes"

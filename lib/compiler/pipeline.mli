(** The compiler driver: analysis → synthesis → optimization → code
    assembly (§5).

    [compile] runs the registered pass pipeline (see {!Pass_manager})
    under a {!Config.t} and returns an executable {!Program.t}:

    + {!Synthesis} builds per-ensemble loop nests, data-copy tasks and
      the buffer plan (shared-variable analysis included);
    + {!Pattern_match} rewrites dot-product nests into GEMM calls and
      hoists per-item GEMV/rank-1 calls into whole-batch GEMMs;
    + {!Fusion} (with {!Tiling}) groups fusable units and tiles the y
      dimension; the [parallelize] pass annotates batch/tile loops.

    The resulting sections are what {!Executor.prepare} code-generates.
    For per-pass control, instrumentation, IR dumps and verification
    use {!Pass_manager.run} directly. *)

val compile : ?seed:int -> Config.t -> Net.t -> Program.t

val compile_pair :
  ?seed:int ->
  ?opts:Executor.Run_opts.t ->
  Config.t ->
  (unit -> Net.t) ->
  Executor.t * Executor.t
(** [compile_pair config build] is [(fast, reference)]: the network
    description compiled twice with the same seed, once under [config]
    and once under {!Config.unoptimized}, both prepared under [opts]
    (default: {!Executor.Run_opts.default} with [domains] taken from
    [config.num_domains]). Both executors hold identical parameter
    values (initialization draws happen in the required,
    config-independent synthesis pass), so the reference is a
    numerically trusted stand-in for the optimized one — the degradation
    target of the serving runtime. [build] must return a fresh,
    structurally identical net on each call.

    Tuned-schedule pickup: when [config.schedule] is [None] and the
    tuning cache ({!Tune_cache}) holds an entry for this exact
    (network, machine, safety, precision), the fast program is compiled
    under the cached schedule (report rows show source ["cache"]) and
    its domain count reaches the default [opts]. An explicit
    [config.schedule] always wins; [LATTE_TUNE_CACHE=off] disables the
    consult. *)

val dump : Program.t -> string
(** Human-readable listing of every section's IR, followed by the
    buffer plan (name, shape, bytes, alias target) and the parameter
    table (value/grad buffers, gradient sizes, learning-rate
    multipliers) — the [--dump-ir] output of the CLI. *)

(** The compiler driver: analysis → synthesis → optimization → code
    assembly (§5).

    [compile] runs the registered pass pipeline (see {!Pass_manager})
    under a {!Config.t} and returns an executable {!Program.t}:

    + {!Synthesis} builds per-ensemble loop nests, data-copy tasks and
      the buffer plan (shared-variable analysis included);
    + {!Pattern_match} rewrites dot-product nests into GEMM calls and
      hoists per-item GEMV/rank-1 calls into whole-batch GEMMs;
    + {!Fusion} (with {!Tiling}) groups fusable units and tiles the y
      dimension; the [parallelize] pass annotates batch/tile loops.

    The resulting sections are what {!Executor.prepare} code-generates.
    For per-pass control, instrumentation, IR dumps and verification
    use {!Pass_manager.run} directly. *)

val compile : ?seed:int -> Config.t -> Net.t -> Program.t

val dump : Program.t -> string
(** Human-readable listing of every section's IR, followed by the
    buffer plan (name, shape, bytes, alias target) and the parameter
    table (value/grad buffers, gradient sizes, learning-rate
    multipliers) — the [--dump-ir] output of the CLI. *)

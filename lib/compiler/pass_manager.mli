(** The compiler's pass registry and instrumented driver.

    Every optimization phase is a named pass over {!Pass.state}. The
    registry fixes the execution order; which optional passes run is
    derived from {!Config.t} flags (or overridden with an explicit pass
    list, the CLI's [--passes]). The driver records per-pass wall time
    and IR statistics, can dump the IR after any pass, and can run the
    {!Ir_verify} well-formedness checker after every pass. *)

val passes : unit -> Pass.info list
(** The registry, in execution order. *)

val pass_names : unit -> string list

val optional_pass_names : unit -> string list
(** Names of the passes that can be disabled. *)

val parse_spec : string -> string list
(** Split a comma-separated [--passes] spec into entries. *)

val resolve : ?passes:string list -> Config.t -> string list * Config.t * string list
(** [resolve ?passes config] is [(enabled, config', warnings)]: the
    optional passes that will run, the normalized config they mirror,
    and any {!Config.normalize} warnings. [passes] entries are either
    ["all"], ["none"], an exact list of pass names, or [+name]/[-name]
    edits applied to the config-derived defaults. Raises
    [Invalid_argument] on unknown pass names. *)

type outcome = {
  info : Pass.info;
  enabled : bool;
  seconds : float;  (** Wall time spent in the pass. *)
  stats : Ir_stats.t;  (** IR census after the pass. *)
  dump : string option;  (** IR listing, when requested via [dump_after]. *)
  bounds : Ir_bounds.report option;
      (** {!Ir_bounds} analysis after the pass, populated under
          [~verify:true] once the synthesize pass has run. *)
  sched_source : string option;
      (** For the schedule-consulting passes (fuse/tile/parallelize)
          when enabled: ["static"] (heuristics), ["cache"] (tuned
          schedule from the tuning cache) or ["explicit"]
          (caller-provided {!Schedule.t}). [None] for other passes. *)
}

type report = {
  outcomes : outcome list;
  warnings : string list;
  verified : bool;
  total_seconds : float;
  parallel_annotated : (string * string list) list;
      (** What the parallelize pass scheduled: region name → loop
          variables annotated for parallel execution. Empty when the
          pass did not run. *)
  parallel_verdicts : (string * Ir_deps.loop_report list) list;
      (** The {!Ir_deps} dependence verdicts behind the schedule:
          region name → per-parallel-loop buffer classification.
          Empty when the parallelize pass did not run. *)
  schedule_source : string;
      (** What drove the schedule-consulting passes: ["static"],
          ["cache"] or ["explicit"]. *)
  tile_groups : (string * int * int) list;
      (** (group label, anchor y extent, chosen tile rows) per tiled
          group, forward then backward — the divisor lattice
          [latte tune] enumerates. Empty when the tile pass did not
          run. *)
}

exception Verification_failed of string * Ir_verify.error list
(** Raised (pass name, diagnostics) when [~verify:true] finds
    ill-formed IR after a pass. *)

exception Analysis_failed of string * Ir_bounds.finding list
(** Raised (pass name, fatal findings) when [~verify:true] and the
    {!Ir_bounds} analyzer proves an access out of bounds or a read of
    never-initialized data after a pass. Unproven (merely guarded)
    accesses do not raise. *)

val run :
  ?seed:int ->
  ?passes:string list ->
  ?verify:bool ->
  ?dump_after:string list ->
  Config.t ->
  Net.t ->
  Program.t * report
(** Compile [net] through the pipeline. [dump_after] names passes whose
    post-pass IR should be captured in the report (["all"] for every
    enabled pass). Normalization warnings are printed to stderr. *)

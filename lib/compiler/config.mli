(** Compiler optimization flags, the knobs behind the Figure 13
    ablation. [default] enables everything; [unoptimized] is the plain
    synthesized code. *)

type t = {
  pattern_match : bool;  (** Rewrite dot-product nests to GEMM (§5.4.1). *)
  tiling : bool;  (** Loop tiling with dependence metadata (§5.4.1). *)
  fusion : bool;  (** Cross-layer fusion of tiled loops (§5.4.2). *)
  parallelize : bool;  (** Batch × tile parallel annotations (§5.4.3). *)
  tile_size : int;
      (** Target rows of the *last* layer per tile — the uniform
          fallback for every group a [schedule] does not name (and for
          all groups when [schedule = None]). Per-group targets come
          from {!Schedule.t}. *)
  batch_gemm : bool;
      (** Hoist per-item GEMV/rank-1 calls to whole-batch GEMMs. *)
  inplace_activation : bool;
      (** Run ActivationEnsembles in place when the source has a single
          consumer (§3.2). *)
  bounds_checks : bool;
      (** Guard buffer accesses the {!Ir_bounds} analyzer cannot prove
          in-bounds (proven accesses keep the unsafe fast path). On in
          both presets; disable only for benchmarking the pure unsafe
          path. *)
  num_domains : int;
      (** Worker domains for parallel-annotated loops (§5.4.3, the CLI's
          [--domains]). [default] reads [LATTE_DOMAINS] (missing or
          malformed means 1); [unoptimized] is always 1. Outputs are
          bit-identical at any count. *)
  precision : Precision.preset;
      (** Execution precision (the CLI's [--precision]): [`F32] is the
          classic pipeline; [`F16] packs activations to half storage
          with f32 accumulation; [`I8] post-training-quantizes weights
          and activations to int8 after calibration. [default] reads
          [LATTE_PRECISION] (missing or malformed means [`F32]);
          [unoptimized] is always [`F32]. *)
  schedule : Schedule.t option;
      (** Per-section schedule override ([latte tune]'s output). When
          set, the tile/fuse/parallelize passes consult it first and the
          scalar knobs above become fallbacks: [tile_size] applies only
          to groups the schedule does not name, and {!normalize} folds
          the schedule's [domains]/[precision] entries into
          [num_domains]/[precision]. [None] (both presets) means the
          static heuristics decide everything. *)
}

val default : t
val unoptimized : t

(** What the environment contributes to {!default}: the one seam through
    which [LATTE_DOMAINS], [LATTE_PRECISION] and [LATTE_TUNE_CACHE] are
    read (parsers shared with [Executor.Run_opts] via {!Latte_env}).
    Malformed values always mean the default, never an error. *)
type env = {
  env_domains : int;
  env_precision : Precision.preset;
  env_tune_cache : Latte_env.tune_cache;
}

val of_env : unit -> env

val with_flags :
  ?pattern_match:bool ->
  ?tiling:bool ->
  ?fusion:bool ->
  ?parallelize:bool ->
  ?tile_size:int ->
  ?batch_gemm:bool ->
  ?inplace_activation:bool ->
  ?bounds_checks:bool ->
  ?num_domains:int ->
  ?precision:Precision.preset ->
  ?schedule:Schedule.t ->
  t ->
  t

val normalize : t -> t * string list
(** Resolve silently-coupled flags into an explicit configuration, with
    a human-readable warning per adjustment: [fusion] without [tiling]
    is dropped (fusion schedules tiles), [batch_gemm] without
    [pattern_match] is dropped (there are no GEMV calls to stack), and
    [num_domains < 1] is clamped to 1. A [schedule] is sanitized
    ({!Schedule.sanitize}: tile targets < 1 dropped with a warning),
    warned about when its tile entries are dead under disabled tiling,
    and its [domains]/[precision] entries folded into the scalar fields
    (silently — same decision, finer grain; tile targets that divide no
    section are diagnosed later by the tile pass, which knows the
    extents). *)

val describe : t -> string
(** The flag summary (["gemm+tiling+..."]); appends
    ["+sched@<digest>"] when a non-empty [schedule] is set, so every
    distinct schedule yields a distinct compile-cache key. *)
